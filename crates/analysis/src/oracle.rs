//! The differential redundancy oracle: static merge classification plus
//! a replay checker for the simulator's merge log.
//!
//! The MMT timing model is oracle-functional — architected results come
//! from the functional interpreter, so a Register Sharing Table bug that
//! merges instructions with *different* operand values would not corrupt
//! any final register. It would silently inflate the reported merging
//! benefit instead. This module closes that gap differentially: the
//! static side classifies every instruction's merge eligibility from
//! dataflow facts alone, and [`Oracle::check`] replays the dynamic merge
//! log recorded by `mmt_sim` (with `record_merge_log` set), asserting
//! that every merged dispatch really was between execute-identical
//! instructions — two independent derivations that must agree.

use crate::cfg::Cfg;
use crate::dataflow::Invariance;
use crate::divergence::DivergenceAnalysis;
use crate::structure::PostDomTree;
use mmt_isa::{Inst, MemSharing, Program, MAX_THREADS};
use mmt_sim::MergeEvent;
use std::fmt;

/// Static merge eligibility of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeClass {
    /// Sources (and, for loads, memory) are provably thread-invariant:
    /// lockstep threads always produce an execute-identical pair, so the
    /// RST should merge it and the merge is guaranteed sound.
    MustMerge,
    /// Soundness depends on dynamic values; merging is permitted exactly
    /// when the dynamic operand (and loaded-value) comparison passes.
    MayMerge,
    /// Merging is never sound: the instruction's result differs across
    /// threads by definition (`tid`).
    MustSplit,
}

impl fmt::Display for MergeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeClass::MustMerge => write!(f, "must-merge"),
            MergeClass::MayMerge => write!(f, "may-merge"),
            MergeClass::MustSplit => write!(f, "must-split"),
        }
    }
}

/// Aggregate statistics from a successful [`Oracle::check`] replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Merge events replayed.
    pub events: usize,
    /// Events at statically must-merge PCs.
    pub must_merge: usize,
    /// Events at statically may-merge PCs (dynamically validated here).
    pub may_merge: usize,
    /// Events that were LVIP-gated multi-execution loads.
    pub lvip_speculative: usize,
}

/// Static per-PC merge classification for one program, plus the replay
/// checker over `mmt_sim` merge logs.
#[derive(Debug, Clone)]
pub struct Oracle {
    program: Program,
    classes: Vec<Option<MergeClass>>,
}

impl Oracle {
    /// Classify every instruction of `prog` under the given memory
    /// sharing model, using the divergence-refined invariance facts
    /// (see [`crate::divergence`]): a register written differently on
    /// the paths of a divergent region no longer counts as invariant at
    /// the reconvergence point, so `MustMerge` here really does mean
    /// "merged threads at this PC always hold equal operands".
    pub fn new(prog: &Program, sharing: MemSharing) -> Oracle {
        let cfg = Cfg::build(prog);
        let pdom = PostDomTree::build(&cfg);
        let div = DivergenceAnalysis::run(prog, &cfg, &pdom, sharing);
        let analysis = div.analysis();
        let classes = prog
            .iter()
            .map(|(pc, inst)| {
                analysis
                    .before(pc)
                    .map(|state| classify(&inst, state, analysis.loads_invariant()))
            })
            .collect();
        Oracle {
            program: prog.clone(),
            classes,
        }
    }

    /// The classification at `pc`; `None` when `pc` is statically
    /// unreachable or outside the program.
    pub fn class_of(&self, pc: u64) -> Option<MergeClass> {
        self.classes.get(pc as usize).copied().flatten()
    }

    /// Per-class counts over all reachable instructions — the static
    /// summary `mmtlint` prints.
    pub fn static_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for class in self.classes.iter().flatten() {
            match class {
                MergeClass::MustMerge => counts.0 += 1,
                MergeClass::MayMerge => counts.1 += 1,
                MergeClass::MustSplit => counts.2 += 1,
            }
        }
        counts
    }

    /// Replay `log` against the program and the static classification.
    ///
    /// Every event must (a) refer to a real, statically reachable PC with
    /// the matching static instruction, (b) not be classified
    /// [`MergeClass::MustSplit`], (c) carry functional records exactly
    /// for its member threads, and (d) have every member
    /// execute-identical to the lead — the paper's criterion for work
    /// that may legally execute once. The first violation aborts the
    /// replay with a description naming the PC.
    pub fn check(&self, log: &[MergeEvent]) -> Result<OracleReport, String> {
        let mut report = OracleReport::default();
        for ev in log {
            let inst = self
                .program
                .fetch(ev.pc)
                .ok_or_else(|| format!("merge event at pc {} outside the program", ev.pc))?;
            if inst != ev.inst {
                return Err(format!(
                    "merge event at pc {} records `{}` but the program holds `{}`",
                    ev.pc, ev.inst, inst
                ));
            }
            let class = self
                .class_of(ev.pc)
                .ok_or_else(|| format!("merged dispatch at statically unreachable pc {}", ev.pc))?;
            if class == MergeClass::MustSplit {
                return Err(format!(
                    "unsound merge at pc {}: `{}` is must-split (thread-dependent by \
                     definition) yet dispatched merged for threads {:?}",
                    ev.pc,
                    ev.inst,
                    ev.itid.threads().collect::<Vec<_>>()
                ));
            }
            if !ev.itid.is_merged() {
                return Err(format!(
                    "merge event at pc {} has fewer than two member threads",
                    ev.pc
                ));
            }
            for t in 0..MAX_THREADS {
                if ev.records[t].is_some() != ev.itid.contains(t) {
                    return Err(format!(
                        "merge event at pc {}: record presence for thread {t} disagrees \
                         with its itid mask {:#06b}",
                        ev.pc,
                        ev.itid.mask()
                    ));
                }
            }
            let lead = ev.itid.lead();
            let lead_rec = ev.records[lead]
                .as_ref()
                .expect("lead is a member, so its record is present");
            for (t, rec) in ev.members() {
                if rec.pc != ev.pc || rec.inst != ev.inst {
                    return Err(format!(
                        "merge event at pc {}: thread {t}'s functional record is for \
                         pc {} `{}`",
                        ev.pc, rec.pc, rec.inst
                    ));
                }
                if !rec.execute_identical(lead_rec) {
                    return Err(format!(
                        "unsound merge at pc {} (`{}`, {class}): thread {t} operands \
                         {:?} loaded {:?} differ from lead thread {lead} operands {:?} \
                         loaded {:?}",
                        ev.pc,
                        ev.inst,
                        rec.srcs(),
                        rec.loaded,
                        lead_rec.srcs(),
                        lead_rec.loaded
                    ));
                }
            }
            report.events += 1;
            match class {
                MergeClass::MustMerge => report.must_merge += 1,
                MergeClass::MayMerge => report.may_merge += 1,
                MergeClass::MustSplit => unreachable!("rejected above"),
            }
            if ev.lvip_speculative {
                report.lvip_speculative += 1;
            }
        }
        Ok(report)
    }
}

/// Classify one instruction given the dataflow state before it. Shared
/// with the static predictor so both always agree per PC.
pub(crate) fn classify(
    inst: &Inst,
    state: &crate::dataflow::RegState,
    loads_invariant: bool,
) -> MergeClass {
    if matches!(inst, Inst::Tid { .. }) {
        return MergeClass::MustSplit;
    }
    let sources_invariant = inst
        .sources()
        .iter()
        .all(|r| state.get(r).inv == Invariance::Invariant);
    if !sources_invariant {
        return MergeClass::MayMerge;
    }
    match inst {
        // Identical addresses still load different values from
        // per-thread (or written-to) memories.
        Inst::Ld { .. } if !loads_invariant => MergeClass::MayMerge,
        _ => MergeClass::MustMerge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder;
    use mmt_isa::Reg;

    fn small_program() -> Program {
        let mut b = Builder::new();
        b.tid(Reg::R1); // 0: must-split
        b.addi(Reg::R2, Reg::R0, 7); // 1: must-merge
        b.alu_add(Reg::R3, Reg::R1, Reg::R2); // 2: may-merge (tid-tainted)
        b.halt(); // 3: must-merge
        b.build().unwrap()
    }

    #[test]
    fn classification_follows_invariance() {
        let o = Oracle::new(&small_program(), MemSharing::Shared);
        assert_eq!(o.class_of(0), Some(MergeClass::MustSplit));
        assert_eq!(o.class_of(1), Some(MergeClass::MustMerge));
        assert_eq!(o.class_of(2), Some(MergeClass::MayMerge));
        assert_eq!(o.class_of(3), Some(MergeClass::MustMerge));
        assert_eq!(o.class_of(99), None);
        assert_eq!(o.static_counts(), (2, 1, 1));
    }

    #[test]
    fn loads_classify_by_sharing_model() {
        let mut b = Builder::new();
        b.addi(Reg::R1, Reg::R0, 5000);
        b.ld(Reg::R2, Reg::R1, 0);
        b.halt();
        let prog = b.build().unwrap();
        let shared = Oracle::new(&prog, MemSharing::Shared);
        assert_eq!(shared.class_of(1), Some(MergeClass::MustMerge));
        let per_thread = Oracle::new(&prog, MemSharing::PerThread);
        assert_eq!(per_thread.class_of(1), Some(MergeClass::MayMerge));
    }

    #[test]
    fn path_dependent_consumers_are_not_must_merge() {
        // R2 ends up 1 or 2 depending on which arm the thread took, so
        // its consumer after the join must not claim a guaranteed merge.
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1); // 0
        b.beq(Reg::R1, Reg::R0, els); // 1
        b.addi(Reg::R2, Reg::R0, 1); // 2
        b.jmp(join); // 3
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2); // 4
        b.bind(join);
        b.alu_add(Reg::R4, Reg::R2, Reg::R2); // 5
        b.halt(); // 6
        let o = Oracle::new(&b.build().unwrap(), MemSharing::Shared);
        assert_eq!(
            o.class_of(5),
            Some(MergeClass::MayMerge),
            "divergence refinement drops the invariance claim"
        );
        assert_eq!(
            o.class_of(6),
            Some(MergeClass::MustMerge),
            "halt unaffected"
        );
    }

    #[test]
    fn empty_log_passes() {
        let o = Oracle::new(&small_program(), MemSharing::Shared);
        assert_eq!(o.check(&[]), Ok(OracleReport::default()));
    }
}
