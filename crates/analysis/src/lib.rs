//! # mmt-analysis — static analysis and differential checking for MMT
//!
//! Six layers over the shared [`mmt_isa::Program`] representation:
//!
//! 1. [`callgraph`] + [`mod@cfg`] + [`dataflow`] — interprocedural call
//!    graph (`jal`/`jr` return-site summaries), basic-block CFG
//!    construction, and a forward dataflow pass computing, per register
//!    and program point, a thread-invariance lattice ([`Invariance`]),
//!    constant values, and definite initialization.
//! 2. [`structure`] + [`divergence`] — dominator and post-dominator
//!    trees, natural-loop detection, and the divergence analysis:
//!    every branch is classified thread-invariant or divergent, and
//!    registers written inside a divergent region lose their invariance
//!    claim at the reconvergence point (the branch's immediate
//!    post-dominator).
//! 3. [`lint`] — a program linter built on those facts: out-of-range
//!    branch targets, falling off the end without `halt`, unreachable
//!    blocks, reads of never-written registers, stores into the reserved
//!    low-memory region, unresolvable indirect jumps.
//! 4. [`memdep`] — the address-expression abstract interpretation:
//!    every load/store PC is classified thread-**invariant**,
//!    **tid-private** (affine in the thread id with disjoint per-thread
//!    ranges), or **shared/unknown**, and shared-memory programs get a
//!    static data-race candidate list consumed by the lint layer
//!    ([`lint_program_with_sharing`]) and validated differentially by
//!    the `mmtmem` bench binary.
//! 5. [`oracle`] + [`mod@predict`] — the differential redundancy oracle: a
//!    static must-merge / may-merge / must-split classification of every
//!    instruction, and [`Oracle::check`], which replays the simulator's
//!    merge log (`mmt_sim` with `record_merge_log`) and independently
//!    verifies that every dynamic merge was between execute-identical
//!    instructions. The timing model is oracle-functional, so an unsound
//!    merge cannot corrupt architected results — this replay is what
//!    makes such a bug loud instead of silent. [`predict()`] turns the
//!    same facts into per-program savings predictions with guaranteed
//!    bounds, validated dynamically by the `mmtpredict` bench binary.
//! 6. [`ssa`] + [`valueflow`] — SSA construction over the CFG/dominator
//!    infrastructure, and the thread-parametric value-flow analysis:
//!    every SSA value is abstracted as an affine `a + b·tid` polynomial
//!    ([`ValueClass`]: Identical / AffineTid / ThreadDependent / Top),
//!    a static model of the Register Sharing Table brackets every PC's
//!    exec-merge fraction (guaranteed-merge and never-merge claims), and
//!    the result tightens the LVIP value-identity brackets
//!    ([`predict_lvip`]). Validated dynamically by the `mmtvalue` bench
//!    binary against the simulator's per-PC profile.
//!
//! ## Example
//!
//! ```
//! use mmt_analysis::{has_errors, lint_program, Cfg, Invariance, MergeClass, Oracle};
//! use mmt_isa::{asm::Builder, MemSharing, Reg};
//!
//! let mut b = Builder::new();
//! b.tid(Reg::R1);                      // thread-dependent by definition
//! b.addi(Reg::R2, Reg::R0, 7);         // invariant constant
//! b.alu_add(Reg::R3, Reg::R1, Reg::R2);
//! b.halt();
//! let prog = b.build()?;
//!
//! // r3 is never read, so the linter reports a dead-def warning — but
//! // nothing error-severity.
//! assert!(!has_errors(&lint_program(&prog)));
//! assert_eq!(Cfg::build(&prog).blocks().len(), 1);
//!
//! let oracle = Oracle::new(&prog, MemSharing::Shared);
//! assert_eq!(oracle.class_of(0), Some(MergeClass::MustSplit));
//! assert_eq!(oracle.class_of(1), Some(MergeClass::MustMerge));
//! assert_eq!(oracle.class_of(2), Some(MergeClass::MayMerge));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod divergence;
pub mod lint;
pub mod memdep;
pub mod oracle;
pub mod predict;
pub mod ssa;
pub mod structure;
pub mod valueflow;

pub use callgraph::{CallGraph, Function};
pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{Analysis, Invariance, RegFact, RegState};
pub use divergence::{BranchClass, DivergenceAnalysis, DivergencePoint};
pub use lint::{has_errors, lint_program, lint_program_with_sharing, Lint, LintKind, Severity};
pub use memdep::{AccessClass, MemAccess, MemDepAnalysis, RacePair};
pub use oracle::{MergeClass, Oracle, OracleReport};
pub use predict::{
    predict, predict_lvip, predict_lvip_with, LvipBracket, LvipPrediction, Prediction,
};
pub use ssa::{DefSite, Phi, Ssa, SsaValue, UseSite, ValueId};
pub use structure::{DomTree, LoopForest, NaturalLoop, PostDomTree};
pub use valueflow::{
    MergeBracket, PcValueFlow, ValueClass, ValueFlowAnalysis, ValueFlowOptions, ValueFlowSummary,
};
