//! Control-flow structure over a [`Cfg`]: dominator tree, post-dominator
//! tree, and natural loops.
//!
//! The post-dominator tree is the static reconvergence oracle the
//! divergence analysis needs: after a divergent branch in block `b`, the
//! immediate post-dominator of `b` is the first block *every* diverged
//! thread must reach again, whatever direction it took — the earliest
//! point at which the fetch unit's FHB search can possibly remerge the
//! threads, and therefore the block whose entry state must forget any
//! register the divergent region may have written differently per
//! thread. Post-dominators are computed over the reverse graph rooted at
//! a virtual exit that collects every block without successors; blocks
//! that cannot reach any exit (or reconverge only at program end) report
//! no immediate post-dominator.
//!
//! Dominators use the iterative Cooper–Harvey–Kennedy algorithm over a
//! reverse postorder; natural loops are back edges `u → h` with `h`
//! dominating `u`, their bodies found by the classic backward walk from
//! the latch. Loop nesting depth drives the predictor's weighting of
//! static instructions by expected execution frequency.

use crate::cfg::Cfg;

/// Immediate dominators over an arbitrary successor-list graph, entry
/// included (the entry and unreachable nodes report `None`). Iterative
/// Cooper–Harvey–Kennedy over reverse postorder.
fn idoms(entry: usize, succs: &[Vec<usize>]) -> Vec<Option<usize>> {
    let n = succs.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v].push(u);
        }
    }

    // Postorder via iterative DFS, then reverse.
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack = vec![(entry, 0usize)];
    visited[entry] = true;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        if *next < succs[u].len() {
            let v = succs[u][*next];
            *next += 1;
            if !visited[v] {
                visited[v] = true;
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    order.reverse();
    let mut rpo = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        rpo[u] = i;
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry); // sentinel during the fixpoint
    let mut changed = true;
    while changed {
        changed = false;
        for &u in order.iter().skip(1) {
            let mut new_idom = None;
            for &p in &preds[u] {
                if idom[p].is_none() {
                    continue; // not yet processed (or unreachable)
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(q) => intersect(p, q, &idom, &rpo),
                });
            }
            if new_idom != idom[u] {
                idom[u] = new_idom;
                changed = true;
            }
        }
    }
    idom[entry] = None;
    idom
}

fn intersect(mut a: usize, mut b: usize, idom: &[Option<usize>], rpo: &[usize]) -> usize {
    while a != b {
        while rpo[a] > rpo[b] {
            a = idom[a].expect("processed nodes have a candidate idom");
        }
        while rpo[b] > rpo[a] {
            b = idom[b].expect("processed nodes have a candidate idom");
        }
    }
    a
}

/// The (forward) dominator tree of a [`Cfg`].
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
}

impl DomTree {
    /// Compute immediate dominators from the CFG's entry block.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        if cfg.blocks().is_empty() {
            return DomTree { idom: Vec::new() };
        }
        let succs: Vec<Vec<usize>> = cfg.blocks().iter().map(|b| b.succs.clone()).collect();
        DomTree {
            idom: idoms(cfg.entry(), &succs),
        }
    }

    /// Immediate dominator of block `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom.get(b).copied().flatten()
    }

    /// Whether block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(up) => cur = up,
                None => return false,
            }
        }
    }
}

/// The post-dominator tree of a [`Cfg`], rooted at a virtual exit.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    ipdom: Vec<Option<usize>>,
}

impl PostDomTree {
    /// Compute immediate post-dominators. Works over the reverse graph
    /// extended with a virtual exit that every successor-less block
    /// feeds; see the module docs for the `None` cases.
    pub fn build(cfg: &Cfg) -> PostDomTree {
        let nb = cfg.blocks().len();
        if nb == 0 {
            return PostDomTree { ipdom: Vec::new() };
        }
        let exit = nb; // virtual
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); nb + 1];
        for (b, blk) in cfg.blocks().iter().enumerate() {
            if blk.succs.is_empty() {
                rsuccs[exit].push(b); // original edge b → exit, reversed
            }
            for &s in &blk.succs {
                rsuccs[s].push(b); // original edge b → s, reversed
            }
        }
        let idom = idoms(exit, &rsuccs);
        let ipdom = (0..nb)
            .map(|b| match idom[b] {
                Some(p) if p != exit => Some(p),
                // `Some(exit)`: reconverges only at program end.
                // `None`: cannot reach any exit at all.
                _ => None,
            })
            .collect();
        PostDomTree { ipdom }
    }

    /// Immediate post-dominator of block `b`: the reconvergence block,
    /// or `None` when control reconverges only at program exit (or
    /// never, for blocks that cannot reach an exit).
    pub fn ipdom(&self, b: usize) -> Option<usize> {
        self.ipdom.get(b).copied().flatten()
    }
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every body block).
    pub header: usize,
    /// All body blocks, sorted ascending (includes the header).
    pub body: Vec<usize>,
    /// Latch blocks: sources of the back edges into the header.
    pub back_edges: Vec<usize>,
}

/// All natural loops of a [`Cfg`], plus per-block nesting depth.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// The loops, one per distinct header, ordered by header index.
    pub loops: Vec<NaturalLoop>,
    depth: Vec<usize>,
}

impl LoopForest {
    /// Find every natural loop: back edges are edges `u → h` where `h`
    /// dominates `u` (both reachable); loops sharing a header are
    /// merged, as usual.
    pub fn find(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let nb = cfg.blocks().len();
        let mut latches_by_header: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (u, blk) in cfg.blocks().iter().enumerate() {
            if !cfg.is_reachable(u) {
                continue;
            }
            for &h in &blk.succs {
                if dom.dominates(h, u) {
                    latches_by_header[h].push(u);
                }
            }
        }

        let mut loops = Vec::new();
        let mut depth = vec![0usize; nb];
        for (h, latches) in latches_by_header.into_iter().enumerate() {
            if latches.is_empty() {
                continue;
            }
            let mut in_body = vec![false; nb];
            in_body[h] = true;
            let mut stack = latches.clone();
            while let Some(u) = stack.pop() {
                if !cfg.is_reachable(u) || std::mem::replace(&mut in_body[u], true) {
                    continue;
                }
                stack.extend(cfg.blocks()[u].preds.iter().copied());
            }
            let body: Vec<usize> = (0..nb).filter(|&b| in_body[b]).collect();
            for &b in &body {
                depth[b] += 1;
            }
            loops.push(NaturalLoop {
                header: h,
                body,
                back_edges: latches,
            });
        }
        LoopForest { loops, depth }
    }

    /// Loop nesting depth of block `b` (0 = not in any loop).
    pub fn depth(&self, b: usize) -> usize {
        self.depth.get(b).copied().unwrap_or(0)
    }

    /// The deepest nesting level in the program.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder;
    use mmt_isa::Reg;

    fn diamond() -> Cfg {
        // 0: beq r1,r0,@3 ; 1: addi ; 2: jmp @4 ; 3: addi ; 4: halt
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.beq(Reg::R1, Reg::R0, els);
        b.addi(Reg::R2, Reg::R0, 1);
        b.jmp(join);
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2);
        b.bind(join);
        b.halt();
        Cfg::build(&b.build().unwrap())
    }

    #[test]
    fn diamond_dominators_and_postdominators() {
        let cfg = diamond();
        let dom = DomTree::dominators(&cfg);
        let pdom = PostDomTree::build(&cfg);
        let branch = cfg.block_of(0).unwrap();
        let then_arm = cfg.block_of(1).unwrap();
        let else_arm = cfg.block_of(3).unwrap();
        let join = cfg.block_of(4).unwrap();

        assert_eq!(dom.idom(branch), None, "entry has no idom");
        assert_eq!(dom.idom(then_arm), Some(branch));
        assert_eq!(dom.idom(else_arm), Some(branch));
        assert_eq!(dom.idom(join), Some(branch), "join is reached two ways");
        assert!(dom.dominates(branch, join));
        assert!(!dom.dominates(then_arm, join));

        assert_eq!(pdom.ipdom(branch), Some(join), "reconvergence point");
        assert_eq!(pdom.ipdom(then_arm), Some(join));
        assert_eq!(pdom.ipdom(else_arm), Some(join));
        assert_eq!(pdom.ipdom(join), None, "only the program exit remains");
    }

    #[test]
    fn countdown_loop_is_detected_with_depth() {
        let mut b = Builder::new();
        let (top, out) = (b.label(), b.label());
        b.li(Reg::R1, 3);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, -1);
        b.bne(Reg::R1, Reg::R0, top);
        b.bind(out);
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        let dom = DomTree::dominators(&cfg);
        let loops = LoopForest::find(&cfg, &dom);
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        let body_blk = cfg.block_of(1).unwrap();
        assert_eq!(l.header, body_blk);
        assert_eq!(l.back_edges, vec![body_blk], "self-loop latch");
        assert_eq!(loops.depth(body_blk), 1);
        assert_eq!(loops.depth(cfg.block_of(0).unwrap()), 0);
        assert_eq!(loops.max_depth(), 1);
    }

    #[test]
    fn nested_loops_nest_depths() {
        let mut b = Builder::new();
        let (outer, inner, out) = (b.label(), b.label(), b.label());
        b.li(Reg::R1, 2); // 0
        b.bind(outer);
        b.li(Reg::R2, 2); // 1: outer header
        b.bind(inner);
        b.addi(Reg::R2, Reg::R2, -1); // 2: inner header
        b.bne(Reg::R2, Reg::R0, inner); // 3
        b.addi(Reg::R1, Reg::R1, -1); // 4
        b.bne(Reg::R1, Reg::R0, outer); // 5
        b.bind(out);
        b.halt(); // 6
        let cfg = Cfg::build(&b.build().unwrap());
        let dom = DomTree::dominators(&cfg);
        let loops = LoopForest::find(&cfg, &dom);
        assert_eq!(loops.loops.len(), 2);
        assert_eq!(loops.max_depth(), 2);
        let inner_blk = cfg.block_of(2).unwrap();
        let outer_hdr = cfg.block_of(1).unwrap();
        assert_eq!(loops.depth(inner_blk), 2, "inner body in both loops");
        assert_eq!(loops.depth(outer_hdr), 1);
        assert_eq!(loops.depth(cfg.block_of(6).unwrap()), 0);
    }

    #[test]
    fn infinite_loop_has_no_postdominator() {
        let mut b = Builder::new();
        let top = b.label();
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, 1);
        b.jmp(top);
        let cfg = Cfg::build(&b.build().unwrap());
        let pdom = PostDomTree::build(&cfg);
        for (i, _) in cfg.blocks().iter().enumerate() {
            assert_eq!(pdom.ipdom(i), None, "block {i} never reaches an exit");
        }
    }

    #[test]
    fn empty_graph_is_handled() {
        let cfg = Cfg::build(&mmt_isa::Program::from_insts(Vec::new()));
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(0), None);
        let pdom = PostDomTree::build(&cfg);
        assert_eq!(pdom.ipdom(0), None);
        let loops = LoopForest::find(&cfg, &dom);
        assert!(loops.loops.is_empty());
        assert_eq!(loops.max_depth(), 0);
    }
}
