//! The static savings predictor: per-program MMT merge predictions from
//! structure alone — no simulation.
//!
//! ## What is guaranteed vs. modeled
//!
//! The *bounds* are guarantees derivable from the pipeline's invariants:
//!
//! * **Upper bound** on the merge-mode fetch fraction: trivially 1.0
//!   whenever any divergent branch is reachable (the FHB may remerge
//!   threads immediately, and a statically-divergent branch can be
//!   dynamically uniform), and *exactly* 1.0 for statically
//!   divergence-free programs — threads start merged at PC 0, every
//!   branch condition is thread-invariant so all threads take the same
//!   direction, and nothing else splits fetch.
//! * **Lower bound**: the loop-weighted fraction of reachable
//!   instructions in blocks *not tainted by divergence*, where tainted
//!   means reachable (transitively, along any CFG path) from a divergent
//!   branch's successors. An untainted block can only execute before the
//!   first divergence, hence always in MERGE mode; everything else may,
//!   in the worst case, be fetched split forever (the FHB search is
//!   finite and remerge alignment is bounded, so no remerge is
//!   guaranteed). For divergence-free programs nothing is tainted and
//!   the bounds pinch to exactly 1.0 — `mmtpredict` checks the dynamic
//!   fraction falls inside `[lower, upper]` for every workload.
//!
//! The *point estimate* ([`Prediction::merge_frac_est`]) is a calibrated
//! model, not a guarantee: it assumes ideal reconvergence (threads
//! remerge exactly at each divergent branch's immediate post-dominator),
//! so only the divergence *regions* fetch split. It always lies inside
//! the guaranteed bounds (regions are a subset of the taint).
//!
//! Instruction weights are `LOOP_WEIGHT^depth` with depth from natural
//! loop nesting — a static stand-in for execution frequency that makes
//! a detour inside a doubly-nested loop count for more than prologue
//! code.

use crate::cfg::Cfg;
use crate::dataflow::Invariance;
use crate::divergence::DivergenceAnalysis;
use crate::oracle::{classify, MergeClass};
use crate::structure::{DomTree, LoopForest, PostDomTree};
use crate::valueflow::{ValueClass, ValueFlowAnalysis, ValueFlowOptions};
use mmt_isa::{Inst, MemSharing, Program};
use std::collections::BTreeMap;

/// Weight multiplier per loop-nesting level (16 ≈ a short inner loop;
/// only ratios of weights matter, not the absolute value).
pub const LOOP_WEIGHT: f64 = 16.0;

/// Per-program static prediction of MMT merge behaviour for a given
/// thread count. See the module docs for bound semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Thread count the uop/savings numbers are scaled for.
    pub threads: usize,
    /// Statically reachable instructions.
    pub reachable_insts: usize,
    /// Reachable instructions classified [`MergeClass::MustMerge`].
    pub must_merge: usize,
    /// Reachable instructions classified [`MergeClass::MayMerge`].
    pub may_merge: usize,
    /// Reachable instructions classified [`MergeClass::MustSplit`].
    pub must_split: usize,
    /// Reachable control transfers classified divergent / uniform.
    pub divergent_branches: usize,
    /// Reachable control transfers every thread takes identically.
    pub uniform_branches: usize,
    /// Natural loops found.
    pub loops: usize,
    /// Deepest loop nesting level.
    pub max_loop_depth: usize,
    /// Functions in the call graph (including `main`).
    pub functions: usize,
    /// `jr` instructions the call graph could not resolve.
    pub unresolved_jumps: usize,
    /// Guaranteed lower bound on the dynamic merge-mode fetch fraction.
    pub merge_frac_lower: f64,
    /// Guaranteed upper bound on the dynamic merge-mode fetch fraction.
    pub merge_frac_upper: f64,
    /// Ideal-reconvergence point estimate (inside the bounds).
    pub merge_frac_est: f64,
    /// Loop-weighted fraction of fetched instructions that are
    /// must-merge (guaranteed executable once for all merged threads).
    pub must_merge_uop_frac: f64,
    /// Loop-weighted fraction that are may-merge (merge soundness
    /// decided dynamically by operand comparison).
    pub may_merge_uop_frac: f64,
    /// Expected uops dispatched per fetched instruction slot when
    /// threads are merged: 1 = fully merged, `threads` = fully split.
    pub expected_split_degree: f64,
    /// Guaranteed lower bound on the fraction of execution work saved
    /// versus `threads` independent cores (must-merge work in untainted
    /// blocks always merges).
    pub savings_lower: f64,
    /// Upper bound on the saved fraction: all must- and may-merge work
    /// merges fully, saving `(t-1)/t` of its uops.
    pub savings_upper: f64,
    /// Refined point estimate of the saved fraction, derived from the
    /// value-flow analysis' static RST model
    /// ([`ValueFlowAnalysis::savings_estimate`]) and clamped into the
    /// guaranteed `[savings_lower, savings_upper]`.
    pub savings_est: f64,
}

/// Run the full static stack (CFG + call graph + dominators +
/// post-dominators + loops + divergence-refined dataflow) and derive a
/// [`Prediction`] for `threads` hardware threads.
pub fn predict(prog: &Program, sharing: MemSharing, threads: usize) -> Prediction {
    let cfg = Cfg::build(prog);
    let dom = DomTree::dominators(&cfg);
    let pdom = PostDomTree::build(&cfg);
    let loops = LoopForest::find(&cfg, &dom);
    let div = DivergenceAnalysis::run(prog, &cfg, &pdom, sharing);
    let analysis = div.analysis();
    let insts = prog.as_slice();
    let nb = cfg.blocks().len();
    let t = threads.max(1) as f64;

    // Taint: blocks reachable from any divergent branch's successors —
    // everything that can possibly execute after a divergence.
    let mut tainted = vec![false; nb];
    let mut stack: Vec<usize> = Vec::new();
    for p in div.divergence_points() {
        stack.extend(cfg.blocks()[p.block].succs.iter().copied());
    }
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut tainted[b], true) {
            continue;
        }
        stack.extend(cfg.blocks()[b].succs.iter().copied());
    }

    // Region taint: only the blocks strictly inside a divergence region
    // (between the branch and its reconvergence point) — the ideal-
    // reconvergence model's split set.
    let mut region_tainted = vec![false; nb];
    for p in div.divergence_points() {
        let mut stack: Vec<usize> = cfg.blocks()[p.block].succs.clone();
        while let Some(b) = stack.pop() {
            if Some(b) == p.reconverge || std::mem::replace(&mut region_tainted[b], true) {
                continue;
            }
            stack.extend(cfg.blocks()[b].succs.iter().copied());
        }
    }

    let mut reachable_insts = 0usize;
    let (mut must, mut may, mut split) = (0usize, 0usize, 0usize);
    let mut w_total = 0.0f64;
    let mut w_untainted = 0.0f64;
    let mut w_unregioned = 0.0f64;
    let mut w_must = 0.0f64;
    let mut w_may = 0.0f64;
    let mut w_must_untainted = 0.0f64;
    let mut w_degree = 0.0f64;

    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let w = LOOP_WEIGHT.powi(loops.depth(b) as i32);
        for pc in blk.pcs() {
            let Some(state) = analysis.before(pc) else {
                continue;
            };
            let inst = &insts[pc as usize];
            let class = classify(inst, state, analysis.loads_invariant());
            reachable_insts += 1;
            w_total += w;
            if !tainted[b] {
                w_untainted += w;
            }
            if !region_tainted[b] {
                w_unregioned += w;
            }
            match class {
                MergeClass::MustMerge => {
                    must += 1;
                    w_must += w;
                    w_degree += w; // executes once for the whole group
                    if !tainted[b] {
                        w_must_untainted += w;
                    }
                }
                MergeClass::MayMerge => {
                    may += 1;
                    w_may += w;
                    // Thread-dependent operands are expected to differ
                    // (full split); unknown operands may or may not.
                    let expected_differs = inst
                        .sources()
                        .iter()
                        .any(|r| state.get(r).inv == Invariance::ThreadDependent);
                    w_degree += if expected_differs {
                        w * t
                    } else {
                        w * (1.0 + t) / 2.0
                    };
                }
                MergeClass::MustSplit => {
                    split += 1;
                    w_degree += w * t;
                }
            }
        }
    }

    let frac = |x: f64| if w_total > 0.0 { x / w_total } else { 1.0 };
    let merge_frac_lower = frac(w_untainted);
    let merge_frac_est = frac(w_unregioned);
    let merge_frac_upper = 1.0;
    let (uniform_branches, divergent_branches) = div.branch_counts();

    let savings_lower = (t - 1.0) / t
        * if w_total > 0.0 {
            w_must_untainted / w_total
        } else {
            0.0
        };
    let savings_upper = (t - 1.0) / t
        * if w_total > 0.0 {
            (w_must + w_may) / w_total
        } else {
            0.0
        };
    let vf = ValueFlowAnalysis::run(prog, sharing, ValueFlowOptions::default());
    let savings_est = vf
        .savings_estimate(threads)
        .clamp(savings_lower, savings_upper);

    Prediction {
        threads,
        reachable_insts,
        must_merge: must,
        may_merge: may,
        must_split: split,
        divergent_branches,
        uniform_branches,
        loops: loops.loops.len(),
        max_loop_depth: loops.max_depth(),
        functions: cfg.call_graph().functions().len(),
        unresolved_jumps: cfg.unresolved_indirect_jumps().len(),
        merge_frac_lower,
        merge_frac_upper,
        merge_frac_est,
        must_merge_uop_frac: if w_total > 0.0 { w_must / w_total } else { 0.0 },
        may_merge_uop_frac: if w_total > 0.0 { w_may / w_total } else { 0.0 },
        expected_split_degree: if w_total > 0.0 {
            w_degree / w_total
        } else {
            1.0
        },
        savings_lower,
        savings_upper,
        savings_est,
    }
}

impl Prediction {
    /// Whether `measured` (a dynamic merge-mode fetch fraction) falls
    /// inside the guaranteed `[lower, upper]` bracket, with a small
    /// epsilon for float accumulation.
    pub fn brackets(&self, measured: f64) -> bool {
        measured >= self.merge_frac_lower - 1e-9 && measured <= self.merge_frac_upper + 1e-9
    }
}

/// Static per-PC bracket on the LVIP hit rate of one load.
///
/// LVIP (lookahead value-identical prediction) is only consulted by the
/// splitter for *merged* loads under per-thread memories whose base
/// registers compare equal in the RST — so the structural claim
/// (`predictable`) is sharp: at a non-predictable PC the predictor is
/// never consulted and the measured lookup count must be exactly zero.
/// Where it *is* consulted the hit rate is data-dependent, so the
/// default bracket is the sound `[0, 1]` — except where the value-flow
/// analysis proves the loaded *value* identical across threads
/// (`value_identical`): there every dispatch-time verification must
/// succeed, tightening the bracket to `[1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LvipBracket {
    /// PC of the load.
    pub pc: u64,
    /// The splitter can consult LVIP here: per-thread memories, and the
    /// address is not statically tid-private. A tid-private address
    /// strictly differs across threads, so the RST can never show the
    /// base registers as shared and the LVIP path is unreachable.
    pub predictable: bool,
    /// All threads compute the same address
    /// ([`crate::memdep::AccessClass::Invariant`]).
    pub addr_invariant: bool,
    /// The loaded value is provably identical across threads
    /// ([`ValueClass::Identical`] result in the value-flow analysis).
    pub value_identical: bool,
    /// Guaranteed lower bound on the measured hit rate.
    pub hit_lower: f64,
    /// Guaranteed upper bound on the measured hit rate.
    pub hit_upper: f64,
}

impl LvipBracket {
    /// Whether a measured hit rate falls inside the bracket, with a small
    /// epsilon for float accumulation.
    pub fn brackets(&self, measured: f64) -> bool {
        measured >= self.hit_lower - 1e-9 && measured <= self.hit_upper + 1e-9
    }
}

/// Static LVIP prediction for a whole program: one bracket per reachable
/// load, keyed by PC. See [`LvipBracket`].
#[derive(Debug, Clone, PartialEq)]
pub struct LvipPrediction {
    /// Bracket per reachable load, keyed by PC.
    pub loads: BTreeMap<u64, LvipBracket>,
}

impl LvipPrediction {
    /// The bracket for the load at `pc`, if any.
    pub fn at(&self, pc: u64) -> Option<&LvipBracket> {
        self.loads.get(&pc)
    }

    /// How many loads are LVIP-predictable.
    pub fn predictable_count(&self) -> usize {
        self.loads.values().filter(|b| b.predictable).count()
    }
}

/// Derive a per-load LVIP bracket from the value-flow analysis (which
/// itself imports the memory divergence facts). Under
/// [`MemSharing::Shared`] no load is predictable (the splitter's LVIP
/// path is gated on per-thread memories), so a dynamic run must observe
/// zero per-PC LVIP lookups everywhere.
pub fn predict_lvip(prog: &Program, sharing: MemSharing) -> LvipPrediction {
    predict_lvip_with(prog, sharing, ValueFlowOptions::default())
}

/// [`predict_lvip`] with explicit [`ValueFlowOptions`] — pass
/// `identical_memories: true` when the per-thread memory images are
/// known equal to unlock `[1, 1]` brackets on identical-value loads.
pub fn predict_lvip_with(
    prog: &Program,
    sharing: MemSharing,
    opts: ValueFlowOptions,
) -> LvipPrediction {
    let vf = ValueFlowAnalysis::run(prog, sharing, opts);
    let loads = prog
        .as_slice()
        .iter()
        .enumerate()
        .filter(|(_, inst)| matches!(inst, Inst::Ld { .. }))
        .filter_map(|(pc, _)| vf.info_at(pc as u64))
        .map(|info| {
            let tid_private = info.addr.map(|c| c.provably_unequal()).unwrap_or(false);
            let value_identical = info.result == Some(ValueClass::Identical);
            let predictable = sharing == MemSharing::PerThread && !tid_private;
            let bracket = LvipBracket {
                pc: info.pc,
                predictable,
                addr_invariant: info.addr == Some(ValueClass::Identical),
                value_identical,
                hit_lower: if predictable && value_identical {
                    1.0
                } else {
                    0.0
                },
                hit_upper: 1.0,
            };
            (info.pc, bracket)
        })
        .collect();
    LvipPrediction { loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder;
    use mmt_isa::Reg;

    #[test]
    fn divergence_free_program_pins_bounds_to_one() {
        let mut b = Builder::new();
        let top = b.label();
        b.addi(Reg::R1, Reg::R0, 4);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, -1);
        b.bne(Reg::R1, Reg::R0, top);
        b.halt();
        let p = predict(&b.build().unwrap(), MemSharing::Shared, 2);
        assert_eq!(p.divergent_branches, 0);
        assert_eq!(p.uniform_branches, 1);
        assert_eq!(p.merge_frac_lower, 1.0);
        assert_eq!(p.merge_frac_upper, 1.0);
        assert_eq!(p.merge_frac_est, 1.0);
        assert_eq!(p.loops, 1);
        assert!(p.brackets(1.0));
        assert!(!p.brackets(0.9));
        assert!(
            (p.expected_split_degree - 1.0).abs() < 1e-12,
            "all must-merge"
        );
        assert!(
            (p.savings_upper - 0.5).abs() < 1e-12,
            "2 threads: half saved"
        );
        assert!(
            p.savings_est >= p.savings_lower && p.savings_est <= p.savings_upper,
            "refined estimate clamped into the guaranteed bounds: {p:?}"
        );
    }

    #[test]
    fn divergent_branch_opens_the_bracket_and_orders_the_estimates() {
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1); // prologue (untainted)
        b.beq(Reg::R1, Reg::R0, els);
        b.addi(Reg::R2, Reg::R0, 1);
        b.jmp(join);
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2);
        b.bind(join);
        b.addi(Reg::R3, Reg::R0, 7); // post-reconvergence
        b.halt();
        let p = predict(&b.build().unwrap(), MemSharing::Shared, 2);
        assert_eq!(p.divergent_branches, 1);
        assert!(p.merge_frac_lower < 1.0, "post-divergence code is tainted");
        assert!(
            p.merge_frac_lower > 0.0,
            "the prologue is guaranteed merged"
        );
        assert_eq!(p.merge_frac_upper, 1.0);
        assert!(
            p.merge_frac_est >= p.merge_frac_lower && p.merge_frac_est <= p.merge_frac_upper,
            "estimate inside bounds: {p:?}"
        );
        assert!(
            p.merge_frac_est > p.merge_frac_lower,
            "ideal reconvergence recovers the post-join code"
        );
        assert!(p.expected_split_degree > 1.0, "tid and tainted work split");
        assert!(p.expected_split_degree <= 2.0 + 1e-12);
        assert!(p.savings_lower <= p.savings_upper);
    }

    #[test]
    fn loop_weighting_dominates_the_fractions() {
        // A divergent detour inside the loop vs. a long merged prologue:
        // the loop weight must make the tainted fraction dominate.
        let mut b = Builder::new();
        let (top, els, join) = (b.label(), b.label(), b.label());
        for _ in 0..8 {
            b.addi(Reg::R2, Reg::R2, 1); // heavy prologue, straight-line
        }
        b.tid(Reg::R1);
        b.addi(Reg::R3, Reg::R0, 4);
        b.bind(top);
        b.beq(Reg::R1, Reg::R0, els); // divergent, inside the loop
        b.addi(Reg::R4, Reg::R4, 1);
        b.jmp(join);
        b.bind(els);
        b.addi(Reg::R4, Reg::R4, 2);
        b.bind(join);
        b.addi(Reg::R3, Reg::R3, -1);
        b.bne(Reg::R3, Reg::R0, top);
        b.halt();
        let p = predict(&b.build().unwrap(), MemSharing::Shared, 2);
        assert!(
            p.merge_frac_lower < 0.5,
            "loop-weighted taint outweighs the prologue: {p:?}"
        );
        assert!(p.max_loop_depth >= 1);
    }

    #[test]
    fn lvip_brackets_follow_sharing_and_classification() {
        use mmt_isa::AluOp;
        let mut b = Builder::new();
        b.li(Reg::R1, 4096);
        b.ld(Reg::R2, Reg::R1, 0); // pc 1: invariant address
        b.tid(Reg::R3);
        b.li(Reg::R4, 4480);
        b.alu(AluOp::Mul, Reg::R4, Reg::R3, Reg::R4);
        b.li(Reg::R5, 65536);
        b.alu_add(Reg::R5, Reg::R5, Reg::R4);
        b.ld(Reg::R6, Reg::R5, 0); // pc 7: tid-private address
        b.halt();
        let prog = b.build().unwrap();

        let p = predict_lvip(&prog, MemSharing::PerThread);
        assert_eq!(p.loads.len(), 2);
        let inv = p.at(1).unwrap();
        assert!(inv.predictable && inv.addr_invariant);
        assert!(inv.brackets(1.0) && inv.brackets(0.0) && !inv.brackets(1.5));
        let private = p.at(7).unwrap();
        assert!(
            !private.predictable,
            "tid-private base regs never compare equal in the RST"
        );
        assert_eq!(p.predictable_count(), 1);

        // Verified-identical per-thread memories tighten the invariant
        // load's bracket to [1, 1]: every LVIP verification must succeed.
        let p = predict_lvip_with(
            &prog,
            MemSharing::PerThread,
            crate::valueflow::ValueFlowOptions {
                identical_memories: true,
            },
        );
        let inv = p.at(1).unwrap();
        assert!(inv.value_identical);
        assert_eq!(inv.hit_lower, 1.0);
        assert!(inv.brackets(1.0) && !inv.brackets(0.5));

        // Shared memories: the splitter's LVIP path is gated off.
        let p = predict_lvip(&prog, MemSharing::Shared);
        assert!(p.loads.values().all(|b| !b.predictable));
    }

    #[test]
    fn empty_program_degenerates_sanely() {
        let p = predict(&Program::from_insts(Vec::new()), MemSharing::Shared, 2);
        assert_eq!(p.reachable_insts, 0);
        assert_eq!(p.merge_frac_lower, 1.0);
        assert_eq!(p.merge_frac_upper, 1.0);
        assert!(p.brackets(1.0));
    }
}
