//! Forward dataflow over the CFG: per-register thread-invariance,
//! constant propagation, and definite-initialization facts.
//!
//! The transfer functions mirror the functional interpreter exactly
//! (`AluOp::apply`, `FpuOp::apply`, `pc + 1` link values), so a constant
//! the analysis derives is the value every thread's [`mmt_isa::interp::Machine`]
//! would compute. Thread-invariance is the static half of the paper's
//! *execute-identical* notion: a register is [`Invariance::Invariant`] at
//! a program point only if all threads that reach that point in lockstep
//! are guaranteed to hold equal values in it.

use crate::cfg::Cfg;
use mmt_isa::reg::NUM_REGS;
use mmt_isa::{Inst, MemSharing, Program, Reg};
use std::collections::VecDeque;

/// Thread-invariance lattice for one register, ordered by increasing
/// uncertainty. Joins and operand combination both take the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariance {
    /// Provably equal across all lockstep threads.
    Invariant,
    /// Derived from the hardware thread id — expected to differ.
    ThreadDependent,
    /// Unknown (e.g. loaded from per-thread memory).
    Top,
}

impl Invariance {
    /// Result invariance of an operation over two operands.
    pub fn combine(self, other: Invariance) -> Invariance {
        self.max(other)
    }
}

/// Everything the analysis knows about one register at one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFact {
    /// Thread-invariance classification.
    pub inv: Invariance,
    /// Known constant value, when the register provably holds one.
    pub konst: Option<u64>,
    /// Definitely written on every path from the entry (registers reset
    /// to zero, so an unwritten read is suspicious, not undefined).
    pub written: bool,
}

/// Per-register facts at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegState {
    regs: [RegFact; NUM_REGS],
}

impl RegState {
    /// State at the program entry: every register holds the reset value
    /// zero (invariant), and only the hardwired zero register counts as
    /// written.
    pub fn entry() -> RegState {
        let mut regs = [RegFact {
            inv: Invariance::Invariant,
            konst: Some(0),
            written: false,
        }; NUM_REGS];
        regs[Reg::R0.index()].written = true;
        RegState { regs }
    }

    /// The fact for register `r`.
    pub fn get(&self, r: Reg) -> RegFact {
        self.regs[r.index()]
    }

    /// Record a write. Writes to the hardwired zero register are
    /// discarded, exactly as the interpreter discards them.
    fn set(&mut self, r: Reg, fact: RegFact) {
        if !r.is_zero() {
            self.regs[r.index()] = fact;
        }
    }

    /// Divergence demotion (see [`Analysis::run_with_demotions`]): every
    /// register in `mask` whose value is path-dependent (no agreed
    /// constant) loses its `Invariant` claim, because threads arriving
    /// here may have travelled different paths of a divergent region and
    /// written it differently. A register that provably holds the *same*
    /// constant on every path is cross-thread equal regardless of path
    /// and keeps its claim. Returns whether anything changed.
    fn demote(&mut self, mask: u32) -> bool {
        if mask == 0 {
            return false;
        }
        let mut changed = false;
        for (i, fact) in self.regs.iter_mut().enumerate() {
            if mask & (1u32 << i) == 0 {
                continue;
            }
            if fact.konst.is_none() && fact.inv < Invariance::ThreadDependent {
                fact.inv = Invariance::ThreadDependent;
                changed = true;
            }
        }
        changed
    }

    /// Join `other` into `self` (control-flow merge). Returns whether
    /// anything changed, for the fixpoint worklist.
    fn join_from(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.regs.iter_mut().zip(&other.regs) {
            let joined = RegFact {
                inv: mine.inv.combine(theirs.inv),
                konst: match (mine.konst, theirs.konst) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    _ => None,
                },
                written: mine.written && theirs.written,
            };
            if joined != *mine {
                *mine = joined;
                changed = true;
            }
        }
        changed
    }
}

/// Apply one instruction's effect to `state`.
///
/// `loads_invariant` is true when every thread loads from one shared,
/// never-written memory — the only situation where a load's result is
/// statically thread-invariant.
fn transfer(state: &mut RegState, pc: u64, inst: &Inst, loads_invariant: bool) {
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let (a, b) = (state.get(rs1), state.get(rs2));
            state.set(
                rd,
                RegFact {
                    inv: a.inv.combine(b.inv),
                    konst: match (a.konst, b.konst) {
                        (Some(x), Some(y)) => Some(op.apply(x, y)),
                        _ => None,
                    },
                    written: true,
                },
            );
        }
        Inst::AluI { op, rd, rs1, imm } => {
            let a = state.get(rs1);
            state.set(
                rd,
                RegFact {
                    inv: a.inv,
                    konst: a.konst.map(|x| op.apply(x, imm as u64)),
                    written: true,
                },
            );
        }
        Inst::Fpu { op, rd, rs1, rs2 } => {
            let (a, b) = (state.get(rs1), state.get(rs2));
            state.set(
                rd,
                RegFact {
                    inv: a.inv.combine(b.inv),
                    konst: match (a.konst, b.konst) {
                        (Some(x), Some(y)) => Some(op.apply(x, y)),
                        _ => None,
                    },
                    written: true,
                },
            );
        }
        Inst::Ld { rd, base, .. } => {
            let b = state.get(base);
            let inv = if loads_invariant {
                b.inv
            } else {
                Invariance::Top
            };
            state.set(
                rd,
                RegFact {
                    inv,
                    konst: None,
                    written: true,
                },
            );
        }
        Inst::Jal { rd, .. } => state.set(
            rd,
            RegFact {
                inv: Invariance::Invariant,
                konst: Some(pc + 1),
                written: true,
            },
        ),
        Inst::Tid { rd } => state.set(
            rd,
            RegFact {
                inv: Invariance::ThreadDependent,
                konst: None,
                written: true,
            },
        ),
        Inst::St { .. } | Inst::Br { .. } | Inst::Jmp { .. } | Inst::Jr { .. } => {}
        Inst::Halt | Inst::Nop => {}
    }
}

/// Fixpoint dataflow result: the state *before* each reachable PC.
#[derive(Debug, Clone)]
pub struct Analysis {
    before: Vec<Option<RegState>>,
    loads_invariant: bool,
}

impl Analysis {
    /// Run the analysis over `prog` with the given CFG.
    ///
    /// `sharing` selects the load model: with [`MemSharing::Shared`] and
    /// a store-free program, loads are thread-invariant whenever their
    /// address is; any store — or per-thread memories — forces loads to
    /// [`Invariance::Top`].
    pub fn run(prog: &Program, cfg: &Cfg, sharing: MemSharing) -> Analysis {
        Analysis::run_with_demotions(prog, cfg, sharing, &[])
    }

    /// Run the analysis with per-block *entry demotion masks*, the hook
    /// the divergence analysis ([`crate::divergence`]) drives: bit `r` of
    /// `demote[b]` means "at the entry of block `b`, register `r` may
    /// have been written differently by threads that took different
    /// paths of a divergent region, so its `Invariant` claim must drop
    /// to [`Invariance::ThreadDependent`] unless it provably holds one
    /// constant on every path". An empty slice (or a zero mask) demotes
    /// nothing, which makes [`Analysis::run`] the plain lockstep
    /// analysis.
    pub fn run_with_demotions(
        prog: &Program,
        cfg: &Cfg,
        sharing: MemSharing,
        demote: &[u32],
    ) -> Analysis {
        let insts = prog.as_slice();
        let n = insts.len();
        let has_stores = insts.iter().any(|i| matches!(i, Inst::St { .. }));
        let loads_invariant = sharing == MemSharing::Shared && !has_stores;
        let mut before: Vec<Option<RegState>> = vec![None; n];
        if n == 0 {
            return Analysis {
                before,
                loads_invariant,
            };
        }

        let nb = cfg.blocks().len();
        let mask_of = |b: usize| demote.get(b).copied().unwrap_or(0);
        let mut inb: Vec<Option<RegState>> = vec![None; nb];
        let mut entry_state = RegState::entry();
        entry_state.demote(mask_of(cfg.entry()));
        inb[cfg.entry()] = Some(entry_state);
        let mut work: VecDeque<usize> = VecDeque::from([cfg.entry()]);
        while let Some(b) = work.pop_front() {
            let blk = &cfg.blocks()[b];
            let mut state = inb[b].clone().expect("worklist holds initialized blocks");
            for pc in blk.pcs() {
                transfer(&mut state, pc, &insts[pc as usize], loads_invariant);
            }
            for &succ in &blk.succs {
                let mask = mask_of(succ);
                let changed = match &mut inb[succ] {
                    Some(t) => {
                        let joined = t.join_from(&state);
                        // Re-apply after every join: a join can drop an
                        // agreed constant, re-exposing the register to
                        // the demotion.
                        t.demote(mask) || joined
                    }
                    slot @ None => {
                        let mut s = state.clone();
                        s.demote(mask);
                        *slot = Some(s);
                        true
                    }
                };
                if changed && !work.contains(&succ) {
                    work.push_back(succ);
                }
            }
        }

        for (b, blk) in cfg.blocks().iter().enumerate() {
            let Some(mut state) = inb[b].clone() else {
                continue;
            };
            for pc in blk.pcs() {
                before[pc as usize] = Some(state.clone());
                transfer(&mut state, pc, &insts[pc as usize], loads_invariant);
            }
        }

        Analysis {
            before,
            loads_invariant,
        }
    }

    /// The register state just before `pc`, or `None` when `pc` is
    /// statically unreachable (or out of range).
    pub fn before(&self, pc: u64) -> Option<&RegState> {
        self.before.get(pc as usize).and_then(|s| s.as_ref())
    }

    /// Whether the load model treated loads as thread-invariant.
    pub fn loads_invariant(&self) -> bool {
        self.loads_invariant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder;
    use mmt_isa::{AluOp, Reg};

    fn analyze(b: Builder, sharing: MemSharing) -> (Program, Analysis) {
        let prog = b.build().unwrap();
        let cfg = Cfg::build(&prog);
        let a = Analysis::run(&prog, &cfg, sharing);
        (prog, a)
    }

    #[test]
    fn constants_fold_through_alu_chains() {
        let mut b = Builder::new();
        b.addi(Reg::R1, Reg::R0, 7);
        b.alu(AluOp::Mul, Reg::R2, Reg::R1, Reg::R1);
        b.addi(Reg::R3, Reg::R2, 1);
        b.halt();
        let (_, a) = analyze(b, MemSharing::Shared);
        let at_halt = a.before(3).unwrap();
        assert_eq!(at_halt.get(Reg::R2).konst, Some(49));
        assert_eq!(at_halt.get(Reg::R3).konst, Some(50));
        assert_eq!(at_halt.get(Reg::R3).inv, Invariance::Invariant);
        assert!(at_halt.get(Reg::R3).written);
    }

    #[test]
    fn tid_taints_everything_it_reaches() {
        let mut b = Builder::new();
        b.tid(Reg::R1);
        b.addi(Reg::R2, Reg::R1, 5);
        b.alu_add(Reg::R3, Reg::R2, Reg::R2);
        b.addi(Reg::R4, Reg::R0, 5); // untouched by tid
        b.halt();
        let (_, a) = analyze(b, MemSharing::Shared);
        let s = a.before(4).unwrap();
        assert_eq!(s.get(Reg::R1).inv, Invariance::ThreadDependent);
        assert_eq!(s.get(Reg::R2).inv, Invariance::ThreadDependent);
        assert_eq!(s.get(Reg::R3).inv, Invariance::ThreadDependent);
        assert_eq!(s.get(Reg::R4).inv, Invariance::Invariant);
        assert_eq!(s.get(Reg::R2).konst, None, "tid has no static value");
    }

    #[test]
    fn writes_to_r0_are_discarded() {
        let mut b = Builder::new();
        b.addi(Reg::R0, Reg::R0, 9);
        b.addi(Reg::R1, Reg::R0, 1);
        b.halt();
        let (_, a) = analyze(b, MemSharing::Shared);
        let s = a.before(2).unwrap();
        assert_eq!(s.get(Reg::R0).konst, Some(0));
        assert_eq!(s.get(Reg::R1).konst, Some(1));
    }

    #[test]
    fn joins_drop_disagreeing_constants_but_keep_writes() {
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1);
        b.beq(Reg::R1, Reg::R0, els);
        b.addi(Reg::R2, Reg::R0, 1);
        b.jmp(join);
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2);
        b.bind(join);
        b.halt();
        let (prog, a) = analyze(b, MemSharing::Shared);
        let join_pc = prog.len() as u64 - 1;
        let s = a.before(join_pc).unwrap();
        assert_eq!(s.get(Reg::R2).konst, None, "1 vs 2 at the join");
        assert!(s.get(Reg::R2).written, "written on both paths");
        // Both arms wrote an invariant constant; the *choice* of arm is
        // thread-dependent, which this flow-insensitive-per-register
        // lattice deliberately does not model — it stays a lower bound
        // for the linter, while the oracle checks dynamic values.
        assert_eq!(s.get(Reg::R1).inv, Invariance::ThreadDependent);
    }

    #[test]
    fn demotion_masks_drop_invariance_except_agreed_constants() {
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1); // 0
        b.beq(Reg::R1, Reg::R0, els); // 1: divergent
        b.addi(Reg::R2, Reg::R0, 1); // 2
        b.addi(Reg::R3, Reg::R0, 5); // 3
        b.jmp(join); // 4
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2); // 5
        b.addi(Reg::R3, Reg::R0, 5); // 6: same constant both paths
        b.bind(join);
        b.halt(); // 7
        let prog = b.build().unwrap();
        let cfg = Cfg::build(&prog);
        let join_blk = cfg.block_of(7).unwrap();
        let mut demote = vec![0u32; cfg.blocks().len()];
        demote[join_blk] = (1 << Reg::R2.index()) | (1 << Reg::R3.index());
        let a = Analysis::run_with_demotions(&prog, &cfg, MemSharing::Shared, &demote);
        let s = a.before(7).unwrap();
        assert_eq!(
            s.get(Reg::R2).inv,
            Invariance::ThreadDependent,
            "1 vs 2 depending on the thread's path"
        );
        assert_eq!(
            s.get(Reg::R3).inv,
            Invariance::Invariant,
            "5 on every path: equal regardless of path taken"
        );
        assert_eq!(s.get(Reg::R3).konst, Some(5));

        // Without the mask, the per-register lattice misses the
        // path-dependence (the hole the divergence analysis closes).
        let plain = Analysis::run(&prog, &cfg, MemSharing::Shared);
        assert_eq!(
            plain.before(7).unwrap().get(Reg::R2).inv,
            Invariance::Invariant
        );
    }

    #[test]
    fn loads_are_top_with_per_thread_memory_and_tracked_when_shared() {
        let mk = || {
            let mut b = Builder::new();
            b.addi(Reg::R1, Reg::R0, 64);
            b.ld(Reg::R2, Reg::R1, 0);
            b.halt();
            b
        };
        let (_, me) = analyze(mk(), MemSharing::PerThread);
        assert_eq!(me.before(2).unwrap().get(Reg::R2).inv, Invariance::Top);
        assert!(!me.loads_invariant());

        let (_, mt) = analyze(mk(), MemSharing::Shared);
        assert_eq!(
            mt.before(2).unwrap().get(Reg::R2).inv,
            Invariance::Invariant,
            "shared store-free memory: same address loads the same value"
        );

        // One store anywhere forfeits load invariance.
        let mut b = Builder::new();
        b.addi(Reg::R1, Reg::R0, 64);
        b.st(Reg::R0, Reg::R1, 0);
        b.ld(Reg::R2, Reg::R1, 0);
        b.halt();
        let (_, stored) = analyze(b, MemSharing::Shared);
        assert_eq!(stored.before(3).unwrap().get(Reg::R2).inv, Invariance::Top);
    }

    #[test]
    fn unreachable_code_has_no_state() {
        let mut b = Builder::new();
        let out = b.label();
        b.jmp(out);
        b.addi(Reg::R1, Reg::R0, 1);
        b.bind(out);
        b.halt();
        let (_, a) = analyze(b, MemSharing::Shared);
        assert!(a.before(1).is_none());
        assert!(a.before(2).is_some());
    }

    #[test]
    fn loop_fixpoint_converges_with_loop_carried_variable() {
        let mut b = Builder::new();
        let (top, out) = (b.label(), b.label());
        b.addi(Reg::R1, Reg::R0, 10);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, -1);
        b.bne(Reg::R1, Reg::R0, top);
        b.bind(out);
        b.halt();
        let (_, a) = analyze(b, MemSharing::Shared);
        let s = a.before(1).unwrap();
        // 10 on entry, 9.. on the back edge: no single constant.
        assert_eq!(s.get(Reg::R1).konst, None);
        assert_eq!(s.get(Reg::R1).inv, Invariance::Invariant);
    }
}
