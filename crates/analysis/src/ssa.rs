//! Static single-assignment form over the CFG (layer 6a).
//!
//! Built with the textbook dominance-frontier algorithm on top of
//! [`DomTree`]: one implicit *entry definition* per architected register
//! (registers start holding 0 in every thread), phi nodes at iterated
//! dominance frontiers of definition sites, and a renaming walk over the
//! dominator tree. The result is a def–use graph:
//!
//! * every instruction's source registers resolve to SSA value ids
//!   ([`Ssa::uses_at`]),
//! * every destination write creates a value ([`Ssa::def_at`]),
//! * every value records where it is consumed ([`SsaValue::uses`]).
//!
//! Two consumers sit on top: the value-flow lattice
//! ([`crate::valueflow`]) annotates each SSA value with a thread-
//! parametric affine class, and the linter reports *dead definitions* —
//! values no reachable instruction or phi ever reads.
//!
//! The zero register is special-cased exactly like the pipeline's RST
//! treats it: writes to `r0` are architecturally discarded, so they
//! produce no SSA value and every `r0` read resolves to the entry
//! definition (constant 0).
//!
//! Unreachable blocks are not renamed: they never execute, so their
//! would-be definitions and uses do not appear in the graph at all.

use crate::cfg::Cfg;
use crate::structure::DomTree;
use mmt_isa::reg::{Reg, NUM_REGS};
use mmt_isa::Program;

/// Index of an SSA value in [`Ssa::values`].
pub type ValueId = usize;

/// Where an SSA value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The implicit start-of-program definition (all registers read 0).
    Entry,
    /// The destination write of the instruction at this PC.
    Inst(u64),
    /// A phi node at the head of this block.
    Phi(usize),
}

/// Where an SSA value is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseSite {
    /// A source operand of the instruction at this PC.
    Inst(u64),
    /// An incoming argument of a phi node at the head of this block.
    Phi(usize),
}

/// One SSA value: a register version with its definition site and all
/// consumers.
#[derive(Debug, Clone)]
pub struct SsaValue {
    /// The architected register this value is a version of.
    pub reg: Reg,
    /// Where the value is defined.
    pub site: DefSite,
    /// Every place the value is read.
    pub uses: Vec<UseSite>,
}

/// A phi node: the merge of one register's incoming versions at a block
/// with multiple predecessors.
#[derive(Debug, Clone)]
pub struct Phi {
    /// The merged register.
    pub reg: Reg,
    /// The value the phi defines.
    pub dest: ValueId,
    /// Incoming `(predecessor block, value)` pairs, one per renamed
    /// predecessor.
    pub args: Vec<(usize, ValueId)>,
}

/// SSA form of a program: values, per-PC def/use resolution, and per-
/// block phi nodes.
#[derive(Debug, Clone)]
pub struct Ssa {
    values: Vec<SsaValue>,
    /// Per-PC defined value (None: no destination, `r0` destination, or
    /// unreachable).
    defs: Vec<Option<ValueId>>,
    /// Per-PC resolved source values, in [`mmt_isa::Inst::sources`]
    /// order (empty for unreachable PCs).
    uses: Vec<Vec<ValueId>>,
    /// Phi nodes per block (empty for unreachable blocks).
    phis: Vec<Vec<Phi>>,
}

impl Ssa {
    /// Construct SSA form for `prog` over its `cfg` and dominator tree.
    pub fn build(prog: &Program, cfg: &Cfg, dom: &DomTree) -> Ssa {
        Builder::new(prog, cfg, dom).run()
    }

    /// All SSA values.
    pub fn values(&self) -> &[SsaValue] {
        &self.values
    }

    /// The value defined by the instruction at `pc`, if any.
    pub fn def_at(&self, pc: u64) -> Option<ValueId> {
        self.defs.get(pc as usize).copied().flatten()
    }

    /// The values consumed by the instruction at `pc`, in source order.
    /// Empty for PCs without sources and for unreachable PCs.
    pub fn uses_at(&self, pc: u64) -> &[ValueId] {
        self.uses
            .get(pc as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Phi nodes at the head of `block`.
    pub fn phis_in(&self, block: usize) -> &[Phi] {
        self.phis.get(block).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Instruction-defined values nothing ever reads — not by an
    /// instruction, not by a phi. Entry definitions and phis are
    /// excluded: a never-read register or an unused merge is not an
    /// actionable instruction-level lint.
    pub fn dead_defs(&self) -> impl Iterator<Item = (u64, &SsaValue)> + '_ {
        self.values.iter().filter_map(|v| match v.site {
            DefSite::Inst(pc) if v.uses.is_empty() => Some((pc, v)),
            _ => None,
        })
    }
}

struct Builder<'a> {
    prog: &'a Program,
    cfg: &'a Cfg,
    dom: &'a DomTree,
    /// Dominator-tree children.
    children: Vec<Vec<usize>>,
    /// Dominance frontier per block.
    frontier: Vec<Vec<usize>>,
    ssa: Ssa,
    /// Renaming stacks, one per architected register.
    stacks: Vec<Vec<ValueId>>,
}

impl<'a> Builder<'a> {
    fn new(prog: &'a Program, cfg: &'a Cfg, dom: &'a DomTree) -> Builder<'a> {
        let nb = cfg.blocks().len();
        let np = prog.as_slice().len();
        Builder {
            prog,
            cfg,
            dom,
            children: vec![Vec::new(); nb],
            frontier: vec![Vec::new(); nb],
            ssa: Ssa {
                values: Vec::new(),
                defs: vec![None; np],
                uses: vec![Vec::new(); np],
                phis: vec![Vec::new(); nb],
            },
            stacks: vec![Vec::new(); NUM_REGS],
        }
    }

    fn run(mut self) -> Ssa {
        if self.cfg.blocks().is_empty() {
            return self.ssa;
        }
        self.compute_dom_children_and_frontier();
        self.place_phis();
        // Entry definitions: every register starts as the constant 0.
        for r in Reg::all() {
            let id = self.new_value(r, DefSite::Entry);
            self.stacks[r.index()].push(id);
        }
        self.rename(self.cfg.entry());
        self.ssa
    }

    fn compute_dom_children_and_frontier(&mut self) {
        let blocks = self.cfg.blocks();
        for b in 0..blocks.len() {
            if let Some(idom) = self.dom.idom(b) {
                self.children[idom].push(b);
            }
        }
        // Cooper–Harvey–Kennedy dominance frontiers: for each join block,
        // walk each predecessor up to the block's idom.
        for (b, blk) in blocks.iter().enumerate() {
            if blk.preds.len() < 2 || !self.cfg.is_reachable(b) {
                continue;
            }
            let Some(idom_b) = self.dom.idom(b) else {
                continue;
            };
            for &p in &blk.preds {
                if !self.cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    if !self.frontier[runner].contains(&b) {
                        self.frontier[runner].push(b);
                    }
                    match self.dom.idom(runner) {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
    }

    /// Iterated-dominance-frontier phi placement, per register.
    fn place_phis(&mut self) {
        let blocks = self.cfg.blocks();
        // Definition blocks per register. The entry block implicitly
        // defines every register (the entry definitions).
        let mut def_blocks: Vec<Vec<usize>> = vec![vec![self.cfg.entry()]; NUM_REGS];
        for (b, blk) in blocks.iter().enumerate() {
            if !self.cfg.is_reachable(b) {
                continue;
            }
            for pc in blk.pcs() {
                if let Some(rd) = self.prog.as_slice()[pc as usize].dest() {
                    if !rd.is_zero() {
                        def_blocks[rd.index()].push(b);
                    }
                }
            }
        }
        for r in Reg::all() {
            if r.is_zero() {
                continue;
            }
            let mut has_phi = vec![false; blocks.len()];
            let mut work: Vec<usize> = def_blocks[r.index()].clone();
            while let Some(b) = work.pop() {
                // Split borrows: take the frontier list by index.
                for i in 0..self.frontier[b].len() {
                    let f = self.frontier[b][i];
                    if std::mem::replace(&mut has_phi[f], true) {
                        continue;
                    }
                    let dest = self.new_value(r, DefSite::Phi(f));
                    self.ssa.phis[f].push(Phi {
                        reg: r,
                        dest,
                        args: Vec::new(),
                    });
                    work.push(f);
                }
            }
        }
    }

    fn new_value(&mut self, reg: Reg, site: DefSite) -> ValueId {
        let id = self.ssa.values.len();
        self.ssa.values.push(SsaValue {
            reg,
            site,
            uses: Vec::new(),
        });
        id
    }

    fn top(&self, r: Reg) -> ValueId {
        *self.stacks[r.index()]
            .last()
            .expect("renaming keeps at least the entry definition on every stack")
    }

    /// Standard renaming walk over the dominator tree (iterative: an
    /// explicit stack avoids recursion depth limits on long CFG chains).
    fn rename(&mut self, root: usize) {
        enum Step {
            Enter(usize),
            Exit { pushes: Vec<Reg> },
        }
        let mut walk = vec![Step::Enter(root)];
        while let Some(step) = walk.pop() {
            match step {
                Step::Exit { pushes } => {
                    for r in pushes {
                        self.stacks[r.index()].pop();
                    }
                }
                Step::Enter(b) => {
                    let mut pushes: Vec<Reg> = Vec::new();
                    // Phi destinations define before any instruction.
                    for i in 0..self.ssa.phis[b].len() {
                        let (reg, dest) = {
                            let p = &self.ssa.phis[b][i];
                            (p.reg, p.dest)
                        };
                        self.stacks[reg.index()].push(dest);
                        pushes.push(reg);
                    }
                    // Instructions: rename uses, then the definition.
                    let (start, end) = {
                        let blk = &self.cfg.blocks()[b];
                        (blk.start, blk.end)
                    };
                    for pc in start..end {
                        let inst = self.prog.as_slice()[pc as usize];
                        for r in inst.sources().iter() {
                            let v = self.top(r);
                            self.ssa.uses[pc as usize].push(v);
                            self.ssa.values[v].uses.push(UseSite::Inst(pc));
                        }
                        if let Some(rd) = inst.dest() {
                            if !rd.is_zero() {
                                let id = self.new_value(rd, DefSite::Inst(pc));
                                self.ssa.defs[pc as usize] = Some(id);
                                self.stacks[rd.index()].push(id);
                                pushes.push(rd);
                            }
                        }
                    }
                    // Fill successor phi arguments from the current tops.
                    for s in 0..self.cfg.blocks()[b].succs.len() {
                        let succ = self.cfg.blocks()[b].succs[s];
                        for i in 0..self.ssa.phis[succ].len() {
                            let reg = self.ssa.phis[succ][i].reg;
                            let v = self.top(reg);
                            self.ssa.phis[succ][i].args.push((b, v));
                            self.ssa.values[v].uses.push(UseSite::Phi(succ));
                        }
                    }
                    walk.push(Step::Exit { pushes });
                    for &c in self.children[b].iter().rev() {
                        walk.push(Step::Enter(c));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder as Asm;
    use mmt_isa::Reg;

    fn ssa_of(prog: &Program) -> (Ssa, Cfg) {
        let cfg = Cfg::build(prog);
        let dom = DomTree::dominators(&cfg);
        (Ssa::build(prog, &cfg, &dom), cfg)
    }

    #[test]
    fn straight_line_defs_and_uses_chain() {
        let mut b = Asm::new();
        b.addi(Reg::R1, Reg::R0, 5); // pc 0
        b.addi(Reg::R2, Reg::R1, 1); // pc 1
        b.addi(Reg::R1, Reg::R2, 2); // pc 2: redefinition
        b.halt();
        let prog = b.build().unwrap();
        let (ssa, _) = ssa_of(&prog);

        let d0 = ssa.def_at(0).unwrap();
        let d1 = ssa.def_at(1).unwrap();
        let d2 = ssa.def_at(2).unwrap();
        assert_ne!(d0, d2, "redefinition creates a fresh version");
        assert_eq!(ssa.uses_at(1), &[d0]);
        assert_eq!(ssa.uses_at(2), &[d1]);
        // pc 0 reads r0 — the entry definition.
        let r0_entry = ssa.uses_at(0)[0];
        assert_eq!(ssa.values()[r0_entry].site, DefSite::Entry);
        assert_eq!(ssa.values()[r0_entry].reg, Reg::R0);
    }

    #[test]
    fn diamond_places_a_phi_at_the_join() {
        let mut b = Asm::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1);
        b.beq(Reg::R1, Reg::R0, els);
        b.addi(Reg::R2, Reg::R0, 1);
        b.jmp(join);
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2);
        b.bind(join);
        b.addi(Reg::R3, Reg::R2, 0); // reads the merged r2
        b.halt();
        let prog = b.build().unwrap();
        let (ssa, cfg) = ssa_of(&prog);

        let join_block = cfg.block_of(5).unwrap();
        let phis = ssa.phis_in(join_block);
        let r2_phi = phis
            .iter()
            .find(|p| p.reg == Reg::R2)
            .expect("r2 merges at the join");
        assert_eq!(r2_phi.args.len(), 2, "one argument per predecessor");
        let (a, b_) = (r2_phi.args[0].1, r2_phi.args[1].1);
        assert_ne!(a, b_, "distinct versions flow in");
        // The join read resolves to the phi destination.
        assert_eq!(ssa.uses_at(5), &[r2_phi.dest]);
    }

    #[test]
    fn loop_carried_value_merges_at_the_header() {
        let mut b = Asm::new();
        let top = b.label();
        b.addi(Reg::R1, Reg::R0, 4);
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, -1);
        b.bne(Reg::R1, Reg::R0, top);
        b.halt();
        let prog = b.build().unwrap();
        let (ssa, cfg) = ssa_of(&prog);

        let header = cfg.block_of(1).unwrap();
        let phi = ssa
            .phis_in(header)
            .iter()
            .find(|p| p.reg == Reg::R1)
            .expect("loop-carried r1 needs a phi");
        assert_eq!(phi.args.len(), 2, "preheader + back edge");
        assert_eq!(ssa.uses_at(1), &[phi.dest]);
    }

    #[test]
    fn dead_def_is_reported_and_used_defs_are_not() {
        let mut b = Asm::new();
        b.addi(Reg::R1, Reg::R0, 5); // used below
        b.addi(Reg::R2, Reg::R0, 9); // never read
        b.addi(Reg::R3, Reg::R1, 1); // also never read
        b.halt();
        let prog = b.build().unwrap();
        let (ssa, _) = ssa_of(&prog);
        let dead: Vec<u64> = ssa.dead_defs().map(|(pc, _)| pc).collect();
        assert_eq!(dead, vec![1, 2]);
    }

    #[test]
    fn r0_writes_produce_no_value() {
        let mut b = Asm::new();
        b.addi(Reg::R0, Reg::R0, 7); // discarded
        b.addi(Reg::R1, Reg::R0, 1); // still reads constant 0
        b.halt();
        let prog = b.build().unwrap();
        let (ssa, _) = ssa_of(&prog);
        assert_eq!(ssa.def_at(0), None);
        let v = ssa.uses_at(1)[0];
        assert_eq!(ssa.values()[v].site, DefSite::Entry);
        // The never-read r1 at pc 1 is a real dead def; the discarded r0
        // write at pc 0 is not.
        let dead: Vec<u64> = ssa.dead_defs().map(|(pc, _)| pc).collect();
        assert_eq!(dead, vec![1], "r0 writes are not dead defs");
    }

    #[test]
    fn unreachable_code_is_not_renamed() {
        let mut b = Asm::new();
        let end = b.label();
        b.jmp(end);
        b.addi(Reg::R1, Reg::R0, 1); // unreachable
        b.bind(end);
        b.halt();
        let prog = b.build().unwrap();
        let (ssa, _) = ssa_of(&prog);
        assert_eq!(ssa.def_at(1), None);
        assert!(ssa.uses_at(1).is_empty());
    }
}
