//! Static memory divergence analysis: an address-expression abstract
//! interpretation over loads and stores.
//!
//! ## The domain
//!
//! Every register value at a program point is abstracted as
//!
//! ```text
//! v(t) = konst  ⊞  coef·t  ⊞  r        (⊞ = wrapping u64 add)
//! ```
//!
//! where `t` is the hardware thread id, `konst` is a known constant,
//! `coef` is the tid coefficient (`None` = unknown tid dependence, the
//! lattice top), and `r` is a *residue* with optional interval bounds and
//! an `inv` flag asserting the residue is thread-invariant (equal across
//! all lockstep threads). The domain subsumes [`crate::dataflow`]'s
//! invariance lattice — `coef = Some(0)` plus `inv` is exactly
//! [`crate::dataflow::Invariance::Invariant`] — and adds the two facts
//! that matter for memory: *affine-in-tid* strides and *bounded* index
//! residues.
//!
//! The bounded residue is the linchpin for the workload generator's
//! addressing idiom `base + tid·STRIDE + (index & MASK)`: the masked
//! index is not affine in anything, but it is bounded by the mask, so a
//! stride larger than the mask span proves per-thread disjointness.
//!
//! ## Classification
//!
//! Every reachable load/store PC gets an [`AccessClass`]:
//!
//! * [`AccessClass::Invariant`] — `coef = 0` and the residue is
//!   thread-invariant: all lockstep threads compute the *same* address.
//! * [`AccessClass::TidPrivate`] — `coef = c ≠ 0` and either the residue
//!   is thread-invariant or its span is smaller than `|c|`: distinct
//!   threads always touch *disjoint* addresses.
//! * [`AccessClass::Shared`] — anything else, with interval bounds over
//!   all threads when the analysis has them.
//!
//! ## Soundness
//!
//! Divergent control flow can make a register's value depend on which
//! path a thread took; the analysis reuses the divergence fixpoint's
//! per-block demotion masks ([`DivergenceAnalysis::demotions`]) and drops
//! the `inv` claim for any demoted register whose value is not provably
//! path-independent (an exact `konst ⊞ coef·t` with a pinned residue is
//! the same formula on every path and keeps its claim). Interval
//! arithmetic uses checked operations that degrade to "unbounded" rather
//! than wrap, loop-carried residues are widened to unbounded after a
//! bounded number of joins, and the tid-disjointness test carries an
//! explicit magnitude guard so `u64` address wrap-around cannot alias two
//! "disjoint" threads. The claims are validated differentially by the
//! `mmtmem` bench binary: a per-PC address profile from the pipeline plus
//! an interleaved functional execution must never contradict a static
//! `Invariant`/`TidPrivate` classification.
//!
//! On top of the classification, [`MemDepAnalysis::races`] reports static
//! data-race candidates for shared-memory programs: a store whose
//! per-thread address range can overlap another thread's access range
//! with no intervening synchronization (the ISA has none — barriers are
//! spin loops the analysis sees as plain loads/stores).

use crate::cfg::Cfg;
use crate::divergence::DivergenceAnalysis;
use crate::structure::PostDomTree;
use mmt_isa::reg::NUM_REGS;
use mmt_isa::{AluOp, Inst, MemSharing, Program, Reg, MAX_THREADS};
use std::collections::VecDeque;
use std::fmt;

/// Joins into one block before loop-carried residue intervals are
/// widened to unbounded (a small constant: intervals only delay the
/// finite-lattice parts, they never refine them back).
const WIDEN_AFTER: u32 = 4;

/// Abstract value `konst ⊞ coef·tid ⊞ residue` for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrFact {
    /// Known constant component (wrapping u64).
    konst: u64,
    /// Tid coefficient; `None` is the lattice top (unknown dependence).
    coef: Option<i64>,
    /// Inclusive residue bounds; `None` = unbounded.
    resid: Option<(i64, i64)>,
    /// The residue is thread-invariant (equal across lockstep threads).
    inv: bool,
}

impl AddrFact {
    /// The lattice top: nothing known.
    fn top() -> AddrFact {
        AddrFact {
            konst: 0,
            coef: None,
            resid: None,
            inv: false,
        }
    }

    /// An exact constant.
    fn constant(k: u64) -> AddrFact {
        AddrFact {
            konst: k,
            coef: Some(0),
            resid: Some((0, 0)),
            inv: true,
        }
    }

    /// The hardware thread id itself.
    fn tid() -> AddrFact {
        AddrFact {
            konst: 0,
            coef: Some(1),
            resid: Some((0, 0)),
            inv: true,
        }
    }

    /// Thread-invariant but otherwise unknown (e.g. a load from shared
    /// never-written memory at an invariant address).
    fn invariant_unknown() -> AddrFact {
        AddrFact {
            konst: 0,
            coef: Some(0),
            resid: None,
            inv: true,
        }
    }

    /// The exact value, when fully pinned.
    fn as_const(&self) -> Option<u64> {
        if self.coef == Some(0) && self.resid == Some((0, 0)) {
            Some(self.konst)
        } else {
            None
        }
    }

    /// Provably equal across all lockstep threads.
    fn is_invariant(&self) -> bool {
        self.coef == Some(0) && self.inv
    }

    /// `konst ⊞ coef·t ⊞ r` with `r` exactly pinned: the value is a pure
    /// function of the thread id, hence path-independent.
    fn is_pinned(&self) -> bool {
        self.resid == Some((0, 0))
    }

    /// Canonical form: fold a pinned residue into `konst`, and a pinned
    /// residue is trivially thread-invariant.
    fn normalize(mut self) -> AddrFact {
        if self.coef.is_none() {
            return AddrFact::top();
        }
        if let Some((l, h)) = self.resid {
            debug_assert!(l <= h, "interval bounds ordered");
            if l == h && l != 0 {
                self.konst = self.konst.wrapping_add_signed(l);
                self.resid = Some((0, 0));
            }
            if self.resid == Some((0, 0)) {
                self.inv = true;
            }
        }
        self
    }

    /// Fold the tid term into the residue bounds (`t ∈ 0..MAX_THREADS`),
    /// giving a `coef = 0` over-approximation. Loses `inv` for a nonzero
    /// coefficient: the folded value genuinely differs per thread.
    fn drop_affine(self) -> AddrFact {
        let Some(c) = self.coef else {
            return AddrFact::top();
        };
        if c == 0 {
            return self;
        }
        let spread = c.checked_mul(MAX_THREADS as i64 - 1);
        let resid = match (self.resid, spread) {
            (Some((l, h)), Some(s)) => match (l.checked_add(s.min(0)), h.checked_add(s.max(0))) {
                (Some(lo), Some(hi)) => Some((lo, hi)),
                _ => None,
            },
            _ => None,
        };
        AddrFact {
            konst: self.konst,
            coef: Some(0),
            resid,
            inv: false,
        }
        .normalize()
    }

    /// Fold a load/store immediate offset into the constant base.
    fn offset(self, off: i64) -> AddrFact {
        AddrFact {
            konst: self.konst.wrapping_add_signed(off),
            ..self
        }
    }
}

/// Join at a control-flow merge (interval hull; `widen` drops a grown
/// interval to unbounded so loop-carried residues terminate).
fn join(old: AddrFact, incoming: AddrFact, widen: bool) -> AddrFact {
    let mut j = join_exact(old, incoming);
    if widen && j.resid != old.resid {
        j.resid = None;
    }
    j
}

fn join_exact(a: AddrFact, b: AddrFact) -> AddrFact {
    let (Some(ca), Some(cb)) = (a.coef, b.coef) else {
        return AddrFact::top();
    };
    if ca != cb {
        // Rebase both onto coef 0 and re-join (one level of recursion).
        return join_exact(a.drop_affine(), b.drop_affine());
    }
    // Rebase b onto a's constant: the displacement is exact mod 2^64, so
    // folding it into b's residue preserves the concrete value set.
    let d = b.konst.wrapping_sub(a.konst) as i64;
    let b_res = b
        .resid
        .and_then(|(l, h)| Some((l.checked_add(d)?, h.checked_add(d)?)));
    let resid = match (a.resid, b_res) {
        (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
        _ => None,
    };
    AddrFact {
        konst: a.konst,
        coef: Some(ca),
        resid,
        inv: a.inv && b.inv,
    }
    .normalize()
}

/// Fallback combine for operations with no linear model: invariance is
/// closed under every deterministic operation, nothing else survives.
fn opaque(a: AddrFact, b: AddrFact) -> AddrFact {
    if a.is_invariant() && b.is_invariant() {
        AddrFact::invariant_unknown()
    } else {
        AddrFact::top()
    }
}

fn linear_add(a: AddrFact, b: AddrFact) -> AddrFact {
    let (Some(ca), Some(cb)) = (a.coef, b.coef) else {
        return opaque(a, b);
    };
    let Some(c) = ca.checked_add(cb) else {
        return opaque(a, b);
    };
    let resid = match (a.resid, b.resid) {
        (Some((al, ah)), Some((bl, bh))) => match (al.checked_add(bl), ah.checked_add(bh)) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        },
        _ => None,
    };
    AddrFact {
        konst: a.konst.wrapping_add(b.konst),
        coef: Some(c),
        resid,
        inv: a.inv && b.inv,
    }
    .normalize()
}

fn linear_sub(a: AddrFact, b: AddrFact) -> AddrFact {
    let (Some(ca), Some(cb)) = (a.coef, b.coef) else {
        return opaque(a, b);
    };
    let Some(c) = ca.checked_sub(cb) else {
        return opaque(a, b);
    };
    let resid = match (a.resid, b.resid) {
        (Some((al, ah)), Some((bl, bh))) => match (al.checked_sub(bh), ah.checked_sub(bl)) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        },
        _ => None,
    };
    AddrFact {
        konst: a.konst.wrapping_sub(b.konst),
        coef: Some(c),
        resid,
        inv: a.inv && b.inv,
    }
    .normalize()
}

/// Multiply by a known constant (linear: every term scales). The cast of
/// `m` to `i64` is congruent mod 2^64, so the scaled terms stay exact;
/// checked arithmetic degrades to unbounded instead of wrapping.
fn scale(a: AddrFact, m: u64) -> AddrFact {
    let mi = m as i64;
    let Some(ca) = a.coef else {
        return opaque(a, AddrFact::constant(m));
    };
    let Some(c) = ca.checked_mul(mi) else {
        return opaque(a, AddrFact::constant(m));
    };
    let resid = a.resid.and_then(|(l, h)| {
        let x = l.checked_mul(mi)?;
        let y = h.checked_mul(mi)?;
        Some((x.min(y), x.max(y)))
    });
    AddrFact {
        konst: a.konst.wrapping_mul(m),
        coef: Some(c),
        resid,
        inv: a.inv,
    }
    .normalize()
}

/// AND with a known mask: the result lands in `[0, m]` whatever the
/// other operand is — the crucial transfer for `index & (WS - 1)`
/// addressing. Thread-invariance survives only if the masked operand was
/// wholly invariant.
fn and_mask(a: AddrFact, b: AddrFact) -> AddrFact {
    let (masked, m) = if let Some(m) = b.as_const() {
        (a, m)
    } else if let Some(m) = a.as_const() {
        (b, m)
    } else {
        return opaque(a, b);
    };
    if m > i64::MAX as u64 {
        return opaque(masked, AddrFact::constant(m));
    }
    AddrFact {
        konst: 0,
        coef: Some(0),
        resid: Some((0, m as i64)),
        inv: masked.is_invariant(),
    }
    .normalize()
}

/// Transfer one ALU operation.
fn alu_fact(op: AluOp, a: AddrFact, b: AddrFact) -> AddrFact {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AddrFact::constant(op.apply(x, y));
    }
    match op {
        AluOp::Add => linear_add(a, b),
        AluOp::Sub => linear_sub(a, b),
        AluOp::Mul => {
            if let Some(m) = b.as_const() {
                scale(a, m)
            } else if let Some(m) = a.as_const() {
                scale(b, m)
            } else {
                opaque(a, b)
            }
        }
        AluOp::And => and_mask(a, b),
        AluOp::Slt => AddrFact {
            konst: 0,
            coef: Some(0),
            resid: Some((0, 1)),
            inv: a.is_invariant() && b.is_invariant(),
        }
        .normalize(),
        _ => opaque(a, b),
    }
}

/// Per-register address facts at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AddrState {
    regs: [AddrFact; NUM_REGS],
}

impl AddrState {
    /// Entry state: every register holds the reset value zero.
    fn entry() -> AddrState {
        AddrState {
            regs: [AddrFact::constant(0); NUM_REGS],
        }
    }

    fn get(&self, r: Reg) -> AddrFact {
        self.regs[r.index()]
    }

    fn set(&mut self, r: Reg, f: AddrFact) {
        if !r.is_zero() {
            self.regs[r.index()] = f;
        }
    }

    /// Divergence demotion, mirroring [`crate::dataflow`]: a demoted
    /// register loses its thread-invariance claim unless its value is a
    /// pure function of the thread id (the same formula on every path).
    fn demote(&mut self, mask: u32) -> bool {
        if mask == 0 {
            return false;
        }
        let mut changed = false;
        for (i, fact) in self.regs.iter_mut().enumerate() {
            if mask & (1u32 << i) == 0 || fact.is_pinned() {
                continue;
            }
            if fact.inv {
                fact.inv = false;
                changed = true;
            }
        }
        changed
    }

    fn join_from(&mut self, other: &AddrState, widen: bool) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.regs.iter_mut().zip(&other.regs) {
            let joined = join(*mine, *theirs, widen);
            if joined != *mine {
                *mine = joined;
                changed = true;
            }
        }
        changed
    }
}

/// Transfer one instruction (mirrors [`crate::dataflow`]'s model, lifted
/// to the address domain).
fn transfer(state: &mut AddrState, pc: u64, inst: &Inst, loads_invariant: bool) {
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let f = alu_fact(op, state.get(rs1), state.get(rs2));
            state.set(rd, f);
        }
        Inst::AluI { op, rd, rs1, imm } => {
            let f = alu_fact(op, state.get(rs1), AddrFact::constant(imm as u64));
            state.set(rd, f);
        }
        Inst::Fpu { rd, rs1, rs2, .. } => {
            let f = opaque(state.get(rs1), state.get(rs2));
            state.set(rd, f);
        }
        Inst::Ld { rd, base, .. } => {
            let b = state.get(base);
            let f = if loads_invariant && b.is_invariant() {
                AddrFact::invariant_unknown()
            } else {
                AddrFact::top()
            };
            state.set(rd, f);
        }
        Inst::Jal { rd, .. } => state.set(rd, AddrFact::constant(pc + 1)),
        Inst::Tid { rd } => state.set(rd, AddrFact::tid()),
        Inst::St { .. } | Inst::Br { .. } | Inst::Jmp { .. } | Inst::Jr { .. } => {}
        Inst::Halt | Inst::Nop => {}
    }
}

/// Static classification of one memory-access PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// All lockstep threads compute the same effective address.
    Invariant,
    /// Distinct threads always touch disjoint addresses, `stride` words
    /// apart per thread id.
    TidPrivate {
        /// Words between consecutive thread ids' address ranges.
        stride: i64,
    },
    /// Possibly shared between threads (or simply unknown).
    Shared {
        /// Inclusive word-address bounds over all threads, when known.
        bounds: Option<(u64, u64)>,
    },
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessClass::Invariant => write!(f, "invariant"),
            AccessClass::TidPrivate { stride } => write!(f, "tid-private(stride {stride})"),
            AccessClass::Shared {
                bounds: Some((l, h)),
            } => write!(f, "shared[{l}..={h}]"),
            AccessClass::Shared { bounds: None } => write!(f, "shared(unbounded)"),
        }
    }
}

fn classify(fact: &AddrFact) -> AccessClass {
    let Some(c) = fact.coef else {
        return AccessClass::Shared { bounds: None };
    };
    if c == 0 {
        if fact.inv {
            return AccessClass::Invariant;
        }
        return AccessClass::Shared {
            bounds: bounds_all_threads(fact),
        };
    }
    let span_ok = fact.inv
        || fact.resid.is_some_and(|(l, h)| {
            h.checked_sub(l)
                .is_some_and(|s| (s as u64) < c.unsigned_abs())
        });
    // Magnitude guard: the cross-thread address difference
    // `c·Δt + Δresidue` must be nonzero mod 2^64, which `|c|·(T-1)` and
    // a span below `|c|` guarantee as long as everything stays far from
    // the wrap point.
    let guard = c
        .unsigned_abs()
        .checked_mul(MAX_THREADS as u64 - 1)
        .is_some_and(|x| x < 1 << 62);
    if span_ok && guard {
        AccessClass::TidPrivate { stride: c }
    } else {
        AccessClass::Shared {
            bounds: bounds_all_threads(fact),
        }
    }
}

/// Inclusive word bounds over every thread id, when they exist without
/// wrapping.
fn bounds_all_threads(fact: &AddrFact) -> Option<(u64, u64)> {
    let c = fact.coef?;
    let (l, h) = fact.resid?;
    let spread = c.checked_mul(MAX_THREADS as i64 - 1)?;
    let lo = l.checked_add(spread.min(0))?;
    let hi = h.checked_add(spread.max(0))?;
    Some((
        fact.konst.checked_add_signed(lo)?,
        fact.konst.checked_add_signed(hi)?,
    ))
}

/// One statically-classified memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// PC of the load/store.
    pub pc: u64,
    /// True for a store.
    pub is_store: bool,
    /// Address classification.
    pub class: AccessClass,
    /// The access sits inside some divergence region (between a divergent
    /// branch and its reconvergence point), so threads may reach it at
    /// different times.
    pub in_divergent_region: bool,
    fact: AddrFact,
}

impl MemAccess {
    /// Inclusive word-address range thread `t` may touch at this PC, or
    /// `None` when unbounded.
    pub fn thread_range(&self, t: usize) -> Option<(u64, u64)> {
        let c = self.fact.coef?;
        let (l, h) = self.fact.resid?;
        let shift = c.checked_mul(t as i64)?;
        let base = self.fact.konst.checked_add_signed(shift)?;
        Some((base.checked_add_signed(l)?, base.checked_add_signed(h)?))
    }
}

/// A static data-race candidate: `store_pc`'s store in one thread can
/// touch a word another thread accesses at `other_pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RacePair {
    /// PC of the store.
    pub store_pc: u64,
    /// PC of the conflicting access (may equal `store_pc`: two threads
    /// executing the same store can collide).
    pub other_pc: u64,
    /// Whether the conflicting access is also a store (write-write).
    pub other_is_store: bool,
    /// Either endpoint sits inside a divergence region.
    pub divergent: bool,
}

/// Result of the memory divergence analysis. See the module docs.
#[derive(Debug, Clone)]
pub struct MemDepAnalysis {
    accesses: Vec<MemAccess>,
    index: Vec<Option<usize>>,
    races: Vec<RacePair>,
}

impl MemDepAnalysis {
    /// Run the analysis: CFG + divergence fixpoint + the address-domain
    /// fixpoint, classifying every reachable load/store. Race candidates
    /// are computed only for [`MemSharing::Shared`] (per-thread memories
    /// cannot race by construction).
    pub fn run(prog: &Program, sharing: MemSharing) -> MemDepAnalysis {
        let insts = prog.as_slice();
        let n = insts.len();
        let mut out = MemDepAnalysis {
            accesses: Vec::new(),
            index: vec![None; n],
            races: Vec::new(),
        };
        if n == 0 {
            return out;
        }
        let cfg = Cfg::build(prog);
        let pdom = PostDomTree::build(&cfg);
        let div = DivergenceAnalysis::run(prog, &cfg, &pdom, sharing);
        let loads_invariant = div.analysis().loads_invariant();
        let demote = div.demotions();
        let nb = cfg.blocks().len();

        // Address-domain fixpoint, structured like `dataflow::run_with_
        // demotions` plus interval widening.
        let mask_of = |b: usize| demote.get(b).copied().unwrap_or(0);
        let mut inb: Vec<Option<AddrState>> = vec![None; nb];
        let mut joins: Vec<u32> = vec![0; nb];
        let mut entry = AddrState::entry();
        entry.demote(mask_of(cfg.entry()));
        inb[cfg.entry()] = Some(entry);
        let mut work: VecDeque<usize> = VecDeque::from([cfg.entry()]);
        while let Some(b) = work.pop_front() {
            let blk = &cfg.blocks()[b];
            let mut state = inb[b].clone().expect("worklist holds initialized blocks");
            for pc in blk.pcs() {
                transfer(&mut state, pc, &insts[pc as usize], loads_invariant);
            }
            for &succ in &blk.succs {
                let widen = joins[succ] >= WIDEN_AFTER;
                let mask = mask_of(succ);
                let changed = match &mut inb[succ] {
                    Some(t) => {
                        let j = t.join_from(&state, widen);
                        t.demote(mask) || j
                    }
                    slot @ None => {
                        let mut s = state.clone();
                        s.demote(mask);
                        *slot = Some(s);
                        true
                    }
                };
                if changed {
                    joins[succ] = joins[succ].saturating_add(1);
                    if !work.contains(&succ) {
                        work.push_back(succ);
                    }
                }
            }
        }

        // Divergence-region membership (between a divergent branch and
        // its reconvergence point), for race severity context.
        let mut in_region = vec![false; nb];
        for p in div.divergence_points() {
            let mut stack: Vec<usize> = cfg.blocks()[p.block].succs.clone();
            let mut seen = vec![false; nb];
            while let Some(b) = stack.pop() {
                if Some(b) == p.reconverge || std::mem::replace(&mut seen[b], true) {
                    continue;
                }
                in_region[b] = true;
                stack.extend(cfg.blocks()[b].succs.iter().copied());
            }
        }

        // Final pass: classify every reachable access.
        for (bidx, blk) in cfg.blocks().iter().enumerate() {
            let Some(mut state) = inb[bidx].clone() else {
                continue;
            };
            for pc in blk.pcs() {
                let inst = &insts[pc as usize];
                let access = match *inst {
                    Inst::Ld { base, off, .. } => Some((false, state.get(base).offset(off))),
                    Inst::St { base, off, .. } => Some((true, state.get(base).offset(off))),
                    _ => None,
                };
                if let Some((is_store, fact)) = access {
                    out.index[pc as usize] = Some(out.accesses.len());
                    out.accesses.push(MemAccess {
                        pc,
                        is_store,
                        class: classify(&fact),
                        in_divergent_region: in_region[bidx],
                        fact,
                    });
                }
                transfer(&mut state, pc, inst, loads_invariant);
            }
        }
        out.accesses.sort_by_key(|a| a.pc);
        for (i, a) in out.accesses.iter().enumerate() {
            out.index[a.pc as usize] = Some(i);
        }

        if sharing == MemSharing::Shared {
            out.find_races();
        }
        out
    }

    fn find_races(&mut self) {
        let mut pairs: Vec<RacePair> = Vec::new();
        for s in self.accesses.iter().filter(|a| a.is_store) {
            for a in &self.accesses {
                if a.is_store && a.pc < s.pc {
                    continue; // store-store pairs reported once, ordered
                }
                let conflict = (0..MAX_THREADS).any(|t| {
                    (0..MAX_THREADS)
                        .filter(|&u| u != t)
                        .any(|u| ranges_may_overlap(s.thread_range(t), a.thread_range(u)))
                });
                if conflict {
                    pairs.push(RacePair {
                        store_pc: s.pc,
                        other_pc: a.pc,
                        other_is_store: a.is_store,
                        divergent: s.in_divergent_region || a.in_divergent_region,
                    });
                }
            }
        }
        pairs.sort_by_key(|p| (p.store_pc, p.other_pc));
        pairs.dedup();
        self.races = pairs;
    }

    /// Every reachable memory access, in ascending PC order.
    pub fn accesses(&self) -> &[MemAccess] {
        &self.accesses
    }

    /// The access at `pc`, if `pc` is a reachable load/store.
    pub fn access_at(&self, pc: u64) -> Option<&MemAccess> {
        self.index
            .get(pc as usize)
            .copied()
            .flatten()
            .map(|i| &self.accesses[i])
    }

    /// Static race candidates (empty for per-thread memories).
    pub fn races(&self) -> &[RacePair] {
        &self.races
    }

    /// `(invariant, tid_private, shared)` access counts.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for a in &self.accesses {
            match a.class {
                AccessClass::Invariant => c.0 += 1,
                AccessClass::TidPrivate { .. } => c.1 += 1,
                AccessClass::Shared { .. } => c.2 += 1,
            }
        }
        c
    }
}

fn ranges_may_overlap(a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> bool {
    match (a, b) {
        (Some((al, ah)), Some((bl, bh))) => al <= bh && bl <= ah,
        _ => true, // unbounded overlaps everything
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder;
    use mmt_isa::Reg;

    fn run(b: Builder, sharing: MemSharing) -> (Program, MemDepAnalysis) {
        let prog = b.build().unwrap();
        let mem = MemDepAnalysis::run(&prog, sharing);
        (prog, mem)
    }

    #[test]
    fn constant_address_is_invariant() {
        let mut b = Builder::new();
        b.li(Reg::R1, 4096);
        b.ld(Reg::R2, Reg::R1, 8);
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        let a = mem.access_at(1).unwrap();
        assert_eq!(a.class, AccessClass::Invariant);
        assert_eq!(a.thread_range(0), Some((4104, 4104)));
        assert_eq!(a.thread_range(3), Some((4104, 4104)));
    }

    #[test]
    fn tid_strided_store_is_private_and_race_free() {
        // base + tid*4480: the generator's per-thread output region.
        let mut b = Builder::new();
        b.tid(Reg::R1);
        b.li(Reg::R2, 4480);
        b.alu(AluOp::Mul, Reg::R2, Reg::R1, Reg::R2);
        b.li(Reg::R3, 262144);
        b.alu_add(Reg::R3, Reg::R3, Reg::R2);
        b.st(Reg::R0, Reg::R3, 4);
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        let a = mem.access_at(5).unwrap();
        assert_eq!(a.class, AccessClass::TidPrivate { stride: 4480 });
        assert_eq!(a.thread_range(0), Some((262148, 262148)));
        assert_eq!(a.thread_range(1), Some((266628, 266628)));
        assert!(mem.races().is_empty(), "disjoint per-thread stores");
    }

    #[test]
    fn masked_index_bounds_beat_the_stride() {
        // addr = base + tid*4480 + (loaded & 2047): the masked residue is
        // unknown and thread-dependent, but bounded below the stride.
        let mut b = Builder::new();
        b.tid(Reg::R1);
        b.li(Reg::R2, 4480);
        b.alu(AluOp::Mul, Reg::R2, Reg::R1, Reg::R2);
        b.li(Reg::R3, 262144);
        b.alu_add(Reg::R3, Reg::R3, Reg::R2);
        b.li(Reg::R4, 65536);
        b.ld(Reg::R5, Reg::R4, 0); // unknown value
        b.andi(Reg::R5, Reg::R5, 2047);
        b.alu_add(Reg::R6, Reg::R3, Reg::R5);
        b.st(Reg::R0, Reg::R6, 0);
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        let a = mem.access_at(9).unwrap();
        assert_eq!(a.class, AccessClass::TidPrivate { stride: 4480 });
        assert_eq!(a.thread_range(0), Some((262144, 264191)));
        assert_eq!(a.thread_range(1), Some((266624, 268671)));
        assert!(mem.races().is_empty());
    }

    #[test]
    fn small_stride_with_wide_residue_is_shared_and_races() {
        // stride 1 < mask span 2047: threads can collide.
        let mut b = Builder::new();
        b.tid(Reg::R1);
        b.li(Reg::R3, 262144);
        b.alu_add(Reg::R3, Reg::R3, Reg::R1); // base + tid
        b.li(Reg::R4, 65536);
        b.ld(Reg::R5, Reg::R4, 0);
        b.andi(Reg::R5, Reg::R5, 2047);
        b.alu_add(Reg::R6, Reg::R3, Reg::R5);
        b.st(Reg::R0, Reg::R6, 0);
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        let a = mem.access_at(7).unwrap();
        assert!(matches!(a.class, AccessClass::Shared { .. }), "{:?}", a);
        let races = mem.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].store_pc, 7);
        assert_eq!(races[0].other_pc, 7);
        assert!(races[0].other_is_store);
    }

    #[test]
    fn barrier_spin_pattern_is_cross_thread_read_write() {
        // Thread writes its own slot (base + tid), spins on a fixed slot
        // another thread owns — classic barrier: store is private, the
        // spin load reads a word another thread stores.
        let mut b = Builder::new();
        let spin = b.label();
        b.tid(Reg::R1);
        b.li(Reg::R2, 524288);
        b.alu_add(Reg::R2, Reg::R2, Reg::R1);
        b.st(Reg::R0, Reg::R2, 0); // pc 3: my slot
        b.li(Reg::R3, 524289); // neighbour's slot (constant)
        b.bind(spin);
        b.ld(Reg::R4, Reg::R3, 0); // pc 5: their slot
        b.beq(Reg::R4, Reg::R0, spin);
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        assert_eq!(
            mem.access_at(3).unwrap().class,
            AccessClass::TidPrivate { stride: 1 }
        );
        assert_eq!(mem.access_at(5).unwrap().class, AccessClass::Invariant);
        let races = mem.races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].store_pc, 3);
        assert_eq!(races[0].other_pc, 5);
        assert!(!races[0].other_is_store, "store vs another thread's load");
    }

    #[test]
    fn divergent_paths_demote_address_invariance() {
        // Each path writes a different constant base: at the join the
        // address is path-dependent, and the path choice is on tid.
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1);
        b.beq(Reg::R1, Reg::R0, els);
        b.li(Reg::R2, 8192);
        b.jmp(join);
        b.bind(els);
        b.li(Reg::R2, 12288);
        b.bind(join);
        b.ld(Reg::R3, Reg::R2, 0); // pc 5
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        let a = mem.access_at(5).unwrap();
        assert!(
            matches!(a.class, AccessClass::Shared { .. }),
            "path-dependent address must not claim invariance: {a:?}"
        );
        // The bounds still cover both constants.
        if let AccessClass::Shared {
            bounds: Some((l, h)),
        } = a.class
        {
            assert!(l <= 8192 && h >= 12288, "{l}..{h}");
        }
    }

    #[test]
    fn same_constant_on_both_paths_stays_invariant() {
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1);
        b.beq(Reg::R1, Reg::R0, els);
        b.li(Reg::R2, 8192);
        b.jmp(join);
        b.bind(els);
        b.li(Reg::R2, 8192);
        b.bind(join);
        b.ld(Reg::R3, Reg::R2, 0); // pc 5
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        assert_eq!(mem.access_at(5).unwrap().class, AccessClass::Invariant);
    }

    #[test]
    fn loop_carried_index_widens_but_keeps_invariance() {
        // for k in 0..N: load base + (k & 63) — the residue interval
        // grows each iteration until widened; invariance must survive.
        let mut b = Builder::new();
        let (top, out) = (b.label(), b.label());
        b.li(Reg::R1, 100); // k counter
        b.li(Reg::R2, 4096); // base
        b.bind(top);
        b.andi(Reg::R3, Reg::R1, 63);
        b.alu_add(Reg::R4, Reg::R2, Reg::R3);
        b.ld(Reg::R5, Reg::R4, 0); // pc 4
        b.addi(Reg::R1, Reg::R1, -1);
        b.bne(Reg::R1, Reg::R0, top);
        b.bind(out);
        b.halt();
        let (_, mem) = run(b, MemSharing::PerThread);
        let a = mem.access_at(4).unwrap();
        assert_eq!(a.class, AccessClass::Invariant);
        assert_eq!(a.thread_range(0), Some((4096, 4159)));
    }

    #[test]
    fn unknown_base_store_races_with_everything() {
        let mut b = Builder::new();
        b.li(Reg::R1, 4096);
        b.ld(Reg::R2, Reg::R1, 0); // unknown address source
        b.st(Reg::R0, Reg::R2, 0); // pc 2: unbounded store
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        let a = mem.access_at(2).unwrap();
        assert_eq!(a.class, AccessClass::Shared { bounds: None });
        assert!(a.thread_range(0).is_none());
        // Races with the load and with itself.
        assert_eq!(mem.races().len(), 2);
    }

    #[test]
    fn per_thread_sharing_reports_no_races() {
        let mut b = Builder::new();
        b.li(Reg::R1, 4096);
        b.st(Reg::R0, Reg::R1, 0); // same constant address, every thread
        b.ld(Reg::R2, Reg::R1, 0);
        b.halt();
        let (_, mem) = run(b, MemSharing::PerThread);
        assert_eq!(mem.access_at(1).unwrap().class, AccessClass::Invariant);
        assert!(
            mem.races().is_empty(),
            "separate memories cannot race by construction"
        );
    }

    #[test]
    fn empty_and_unreachable_programs_are_total() {
        let mem = MemDepAnalysis::run(&Program::from_insts(Vec::new()), MemSharing::Shared);
        assert!(mem.accesses().is_empty());
        assert!(mem.races().is_empty());

        let mut b = Builder::new();
        let out = b.label();
        b.jmp(out);
        b.st(Reg::R0, Reg::R1, 0); // unreachable
        b.bind(out);
        b.halt();
        let (_, mem) = run(b, MemSharing::Shared);
        assert!(
            mem.access_at(1).is_none(),
            "unreachable access unclassified"
        );
        assert_eq!(mem.class_counts(), (0, 0, 0));
    }
}
