//! Divergence analysis: which control transfers can send lockstep
//! threads down different paths, where they must reconverge, and how
//! that feeds back into the invariance lattice.
//!
//! ## Classification
//!
//! A conditional branch is [`BranchClass::Divergent`] when its condition
//! registers are not provably thread-invariant (so two merged threads
//! can evaluate it differently) *and* its block has at least two
//! distinct successors (otherwise there is nothing to diverge to). A
//! `jr` is divergent under the same rule applied to its target register.
//! `jmp`/`jal` are always [`BranchClass::Uniform`]: every thread takes
//! the one edge.
//!
//! ## Reconvergence and refinement
//!
//! The immediate post-dominator of a divergent branch's block is its
//! static reconvergence point: the first block every diverged thread
//! reaches again (the paper's remerge target for the FHB search). The
//! *divergence region* is everything reachable from the branch's
//! successors without passing through that point. Registers written
//! inside the region are path-dependent at any control-flow join where
//! diverged threads can meet again — the reconvergence block itself and
//! every multi-predecessor block inside the region (two distinct paths
//! first meet at a block with two predecessors) — so the base lattice's
//! `Invariant` claim is unsound there. The analysis therefore demotes
//! those registers at those blocks (via
//! [`Analysis::run_with_demotions`]) unless they provably hold one
//! constant on every path, and iterates: demotion can make more
//! branches divergent, which can add demotions. Demotion masks only
//! grow, so the outer fixpoint terminates.
//!
//! The result is the refined [`Analysis`] the merge oracle and the
//! static predictor both build on: `Invariant` now really means "equal
//! across threads whenever they are merged at this PC", including
//! threads that remerged after taking different paths.

use crate::cfg::Cfg;
use crate::dataflow::{Analysis, Invariance, RegState};
use crate::structure::PostDomTree;
use mmt_isa::{Inst, MemSharing, Program};

/// Static classification of one control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchClass {
    /// All lockstep threads take the same direction.
    Uniform,
    /// Merged threads may take different directions.
    Divergent,
}

/// One divergent control transfer and its static reconvergence point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergencePoint {
    /// PC of the divergent branch (always its block's last instruction).
    pub pc: u64,
    /// Block containing the branch.
    pub block: usize,
    /// Immediate post-dominator of the branch's block — the earliest
    /// block every diverged thread must reach again. `None` when control
    /// reconverges only at program exit (the region is then everything
    /// reachable from the branch's successors).
    pub reconverge: Option<usize>,
}

/// Result of the divergence fixpoint. See the module docs.
#[derive(Debug, Clone)]
pub struct DivergenceAnalysis {
    analysis: Analysis,
    classes: Vec<Option<BranchClass>>,
    points: Vec<DivergencePoint>,
    demote: Vec<u32>,
    rounds: usize,
}

impl DivergenceAnalysis {
    /// Run the divergence-refined analysis to its outer fixpoint.
    pub fn run(
        prog: &Program,
        cfg: &Cfg,
        pdom: &PostDomTree,
        sharing: MemSharing,
    ) -> DivergenceAnalysis {
        let insts = prog.as_slice();
        let nb = cfg.blocks().len();
        let mut demote = vec![0u32; nb];
        let mut rounds = 0;
        loop {
            rounds += 1;
            let analysis = Analysis::run_with_demotions(prog, cfg, sharing, &demote);
            let (classes, points) = classify_branches(insts, cfg, pdom, &analysis);

            let mut grew = false;
            for p in &points {
                let region = region_blocks(cfg, p.block, p.reconverge);
                let mask = written_mask(insts, cfg, &region);
                if mask == 0 {
                    continue;
                }
                for &b in &region {
                    if cfg.blocks()[b].preds.len() >= 2 && demote[b] | mask != demote[b] {
                        demote[b] |= mask;
                        grew = true;
                    }
                }
                if let Some(j) = p.reconverge {
                    if demote[j] | mask != demote[j] {
                        demote[j] |= mask;
                        grew = true;
                    }
                }
            }
            if !grew {
                return DivergenceAnalysis {
                    analysis,
                    classes,
                    points,
                    demote,
                    rounds,
                };
            }
        }
    }

    /// The refined dataflow result (demotions applied).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Classification of the control transfer at `pc`: `Some` for every
    /// reachable branch/jump instruction, `None` elsewhere.
    pub fn class_of(&self, pc: u64) -> Option<BranchClass> {
        self.classes.get(pc as usize).copied().flatten()
    }

    /// Every divergent control transfer, in ascending PC order, with its
    /// reconvergence block.
    pub fn divergence_points(&self) -> &[DivergencePoint] {
        &self.points
    }

    /// `(uniform, divergent)` counts over reachable control transfers.
    pub fn branch_counts(&self) -> (usize, usize) {
        let mut counts = (0, 0);
        for c in self.classes.iter().flatten() {
            match c {
                BranchClass::Uniform => counts.0 += 1,
                BranchClass::Divergent => counts.1 += 1,
            }
        }
        counts
    }

    /// The per-block entry demotion masks the fixpoint settled on
    /// (diagnostic; indexed by block).
    pub fn demotions(&self) -> &[u32] {
        &self.demote
    }

    /// Outer fixpoint iterations taken (≥ 1).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// Classify every reachable control transfer and collect the divergent
/// ones with their reconvergence points.
fn classify_branches(
    insts: &[Inst],
    cfg: &Cfg,
    pdom: &PostDomTree,
    analysis: &Analysis,
) -> (Vec<Option<BranchClass>>, Vec<DivergencePoint>) {
    let mut classes: Vec<Option<BranchClass>> = vec![None; insts.len()];
    let mut points = Vec::new();
    for (pc, inst) in insts.iter().enumerate() {
        if !inst.is_control() {
            continue;
        }
        let Some(state) = analysis.before(pc as u64) else {
            continue; // unreachable
        };
        let block = cfg
            .block_of(pc as u64)
            .expect("analyzed PCs are in the program");
        let multi_way = cfg.blocks()[block].succs.len() >= 2;
        let class = match inst {
            Inst::Br { .. } | Inst::Jr { .. } if multi_way && !sources_invariant(inst, state) => {
                BranchClass::Divergent
            }
            _ => BranchClass::Uniform,
        };
        classes[pc] = Some(class);
        if class == BranchClass::Divergent {
            points.push(DivergencePoint {
                pc: pc as u64,
                block,
                reconverge: pdom.ipdom(block),
            });
        }
    }
    (classes, points)
}

fn sources_invariant(inst: &Inst, state: &RegState) -> bool {
    inst.sources()
        .iter()
        .all(|r| state.get(r).inv == Invariance::Invariant)
}

/// Blocks reachable from `block`'s successors without passing through
/// `stop` (the divergence region). With `stop == None` the region is
/// everything reachable from the successors.
fn region_blocks(cfg: &Cfg, block: usize, stop: Option<usize>) -> Vec<usize> {
    let nb = cfg.blocks().len();
    let mut seen = vec![false; nb];
    let mut stack: Vec<usize> = cfg.blocks()[block].succs.clone();
    let mut region = Vec::new();
    while let Some(b) = stack.pop() {
        if Some(b) == stop || std::mem::replace(&mut seen[b], true) {
            continue;
        }
        region.push(b);
        stack.extend(cfg.blocks()[b].succs.iter().copied());
    }
    region.sort_unstable();
    region
}

/// Bitmask of registers written by any instruction in `blocks` (the
/// hardwired zero register never counts).
fn written_mask(insts: &[Inst], cfg: &Cfg, blocks: &[usize]) -> u32 {
    let mut mask = 0u32;
    for &b in blocks {
        for pc in cfg.blocks()[b].pcs() {
            if let Some(rd) = insts[pc as usize].dest() {
                if !rd.is_zero() {
                    mask |= 1u32 << rd.index();
                }
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::PostDomTree;
    use mmt_isa::asm::Builder;
    use mmt_isa::Reg;

    fn run(b: Builder, sharing: MemSharing) -> (Program, Cfg, DivergenceAnalysis) {
        let prog = b.build().unwrap();
        let cfg = Cfg::build(&prog);
        let pdom = PostDomTree::build(&cfg);
        let div = DivergenceAnalysis::run(&prog, &cfg, &pdom, sharing);
        (prog, cfg, div)
    }

    #[test]
    fn invariant_branches_are_uniform() {
        let mut b = Builder::new();
        let (top, _out) = (b.label(), b.label());
        b.addi(Reg::R1, Reg::R0, 3); // 0
        b.bind(top);
        b.addi(Reg::R1, Reg::R1, -1); // 1
        b.bne(Reg::R1, Reg::R0, top); // 2
        b.halt(); // 3
        let (_, _, div) = run(b, MemSharing::Shared);
        assert_eq!(div.class_of(2), Some(BranchClass::Uniform));
        assert!(div.divergence_points().is_empty());
        assert_eq!(div.branch_counts(), (1, 0));
        assert_eq!(div.rounds(), 1, "no demotions: one round suffices");
    }

    #[test]
    fn tid_conditions_are_divergent_with_reconvergence_point() {
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1); // 0
        b.beq(Reg::R1, Reg::R0, els); // 1: divergent
        b.addi(Reg::R2, Reg::R0, 1); // 2
        b.jmp(join); // 3
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2); // 4
        b.bind(join);
        b.halt(); // 5
        let (_, cfg, div) = run(b, MemSharing::Shared);
        assert_eq!(div.class_of(1), Some(BranchClass::Divergent));
        let p = div.divergence_points()[0];
        assert_eq!(p.pc, 1);
        assert_eq!(p.reconverge, cfg.block_of(5), "join block reconverges");
        assert!(div.rounds() >= 2, "demotion forced a re-run");
    }

    #[test]
    fn region_written_registers_lose_invariance_at_the_join() {
        let mut b = Builder::new();
        let (els, join) = (b.label(), b.label());
        b.tid(Reg::R1); // 0
        b.beq(Reg::R1, Reg::R0, els); // 1
        b.addi(Reg::R2, Reg::R0, 1); // 2: R2 := 1 on this path
        b.addi(Reg::R3, Reg::R0, 5); // 3: R3 := 5 on this path
        b.jmp(join); // 4
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2); // 5: R2 := 2 on that path
        b.addi(Reg::R3, Reg::R0, 5); // 6: R3 := 5 on that path too
        b.bind(join);
        b.alu_add(Reg::R4, Reg::R2, Reg::R2); // 7: consumes path-dependent R2
        b.alu_add(Reg::R5, Reg::R3, Reg::R3); // 8: consumes agreed-constant R3
        b.halt(); // 9
        let (_, _, div) = run(b, MemSharing::Shared);
        let s = div.analysis().before(7).unwrap();
        assert_eq!(
            s.get(Reg::R2).inv,
            Invariance::ThreadDependent,
            "written differently per path of a divergent region"
        );
        assert_eq!(
            s.get(Reg::R3).inv,
            Invariance::Invariant,
            "same constant on every path stays invariant"
        );
        // The consumer of R2 is thread-dependent too.
        assert_eq!(
            div.analysis().before(9).unwrap().get(Reg::R4).inv,
            Invariance::ThreadDependent
        );
        assert_eq!(
            div.analysis().before(9).unwrap().get(Reg::R5).inv,
            Invariance::Invariant
        );
    }

    #[test]
    fn demotion_cascades_into_secondary_divergence() {
        // A branch on a register that is only path-dependent (both arms
        // write invariant constants): the base lattice calls it uniform;
        // the refinement must find it divergent on the second round.
        let mut b = Builder::new();
        let (els, join, out) = (b.label(), b.label(), b.label());
        b.tid(Reg::R1); // 0
        b.beq(Reg::R1, Reg::R0, els); // 1: primary divergence
        b.addi(Reg::R2, Reg::R0, 1); // 2
        b.jmp(join); // 3
        b.bind(els);
        b.addi(Reg::R2, Reg::R0, 2); // 4
        b.bind(join);
        b.beq(Reg::R2, Reg::R0, out); // 5: secondary — on path-dependent R2
        b.addi(Reg::R3, Reg::R0, 1); // 6
        b.bind(out);
        b.halt(); // 7
        let (_, _, div) = run(b, MemSharing::Shared);
        assert_eq!(div.class_of(1), Some(BranchClass::Divergent));
        assert_eq!(
            div.class_of(5),
            Some(BranchClass::Divergent),
            "branch on region-written register diverges too"
        );
        assert_eq!(div.divergence_points().len(), 2);
    }

    #[test]
    fn uniform_programs_have_untouched_analysis() {
        let mut b = Builder::new();
        b.tid(Reg::R1); // thread-dependent data, but no control on it
        b.addi(Reg::R2, Reg::R0, 7);
        b.halt();
        let (_, _, div) = run(b, MemSharing::Shared);
        assert!(div.divergence_points().is_empty());
        assert!(div.demotions().iter().all(|&m| m == 0));
        assert_eq!(
            div.analysis().before(2).unwrap().get(Reg::R2).konst,
            Some(7)
        );
    }
}
