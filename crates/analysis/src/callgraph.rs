//! Context-insensitive call graph over a [`Program`].
//!
//! Functions are discovered from the call instructions themselves: every
//! `jal` target (in range) is a function entry, plus the pseudo-function
//! rooted at PC 0 (`main`, which nothing calls). Each function's body is
//! the set of PCs reachable *intraprocedurally* from its entry, where a
//! `jal` is summarized by its fall-through edge (`pc + 1` — the call
//! returns) and a `jr` is a function exit. A PC may belong to several
//! functions (shared tails); the analysis stays context-insensitive and
//! simply unions.
//!
//! The payoff is precise `jr` resolution: a register jump inside
//! function `f` may return exactly to the instruction after any of `f`'s
//! call sites, not — as the previous CFG over-approximation had it — to
//! the instruction after *every* `jal` in the program. A `jr` with no
//! resolvable return site (no enclosing called function, e.g. a `jr`
//! only reachable from `main`) yields no targets and is reported in
//! [`CallGraph::unresolved_jumps`]; the linter surfaces it as
//! [`crate::lint::LintKind::UnresolvedIndirectJump`].

use mmt_isa::{Inst, Program};

/// One discovered function: an entry PC plus everything reachable from
/// it without following calls or returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Entry PC (0 for the `main` pseudo-function, a `jal` target
    /// otherwise).
    pub entry: u64,
    /// PCs in the body, sorted ascending (includes `entry`).
    pub body: Vec<u64>,
    /// PCs of `jr` instructions in the body (the function's returns).
    pub returns: Vec<u64>,
    /// PCs of `jal` instructions anywhere in the program that target
    /// `entry` (empty for `main`).
    pub call_sites: Vec<u64>,
}

/// The call graph of one program. See the module docs for the function
/// discovery and `jr` resolution rules.
#[derive(Debug, Clone)]
pub struct CallGraph {
    funcs: Vec<Function>,
    containing: Vec<Vec<usize>>,
    jr_targets: Vec<Option<Vec<u64>>>,
    unresolved: Vec<u64>,
}

impl CallGraph {
    /// Build the call graph for `prog`. An empty program yields an empty
    /// graph (no functions, not even `main`).
    pub fn build(prog: &Program) -> CallGraph {
        let insts = prog.as_slice();
        let n = insts.len();
        if n == 0 {
            return CallGraph {
                funcs: Vec::new(),
                containing: Vec::new(),
                jr_targets: Vec::new(),
                unresolved: Vec::new(),
            };
        }

        // Entries: PC 0 plus every in-range jal target, deduplicated and
        // sorted (so `main` is always function 0).
        let mut entries: Vec<u64> = vec![0];
        for (_, inst) in prog.iter() {
            if let Some(t) = inst.call_target() {
                if (t as usize) < n {
                    entries.push(t);
                }
            }
        }
        entries.sort_unstable();
        entries.dedup();

        let mut funcs: Vec<Function> = Vec::with_capacity(entries.len());
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &entry in &entries {
            let idx = funcs.len();
            let mut seen = vec![false; n];
            let mut stack = vec![entry as usize];
            while let Some(pc) = stack.pop() {
                if std::mem::replace(&mut seen[pc], true) {
                    continue;
                }
                containing[pc].push(idx);
                match insts[pc] {
                    Inst::Halt | Inst::Jr { .. } => {}
                    Inst::Jmp { target } => {
                        if (target as usize) < n {
                            stack.push(target as usize);
                        }
                    }
                    // Intraprocedural call summary: execution resumes at
                    // the return site; the callee is its own function.
                    Inst::Jal { .. } => {
                        if pc + 1 < n {
                            stack.push(pc + 1);
                        }
                    }
                    Inst::Br { target, .. } => {
                        if (target as usize) < n {
                            stack.push(target as usize);
                        }
                        if pc + 1 < n {
                            stack.push(pc + 1);
                        }
                    }
                    _ => {
                        if pc + 1 < n {
                            stack.push(pc + 1);
                        }
                    }
                }
            }
            let body: Vec<u64> = (0..n as u64).filter(|&pc| seen[pc as usize]).collect();
            let returns: Vec<u64> = body
                .iter()
                .copied()
                .filter(|&pc| insts[pc as usize].is_indirect_jump())
                .collect();
            funcs.push(Function {
                entry,
                body,
                returns,
                call_sites: Vec::new(),
            });
        }

        for (pc, inst) in prog.iter() {
            if let Some(t) = inst.call_target() {
                if (t as usize) < n {
                    let idx = entries.binary_search(&t).expect("every target is an entry");
                    funcs[idx].call_sites.push(pc);
                }
            }
        }

        // Resolve every jr to the union of its enclosing functions'
        // return sites. `main` (function 0, never called) contributes
        // nothing; a jr whose target set comes out empty is unresolved.
        let mut jr_targets: Vec<Option<Vec<u64>>> = vec![None; n];
        let mut unresolved = Vec::new();
        for (pc, inst) in prog.iter() {
            if !inst.is_indirect_jump() {
                continue;
            }
            let mut targets: Vec<u64> = Vec::new();
            for &f in &containing[pc as usize] {
                // `main` contributes nothing: its call-site list is empty
                // unless something really does `jal 0`.
                for &site in &funcs[f].call_sites {
                    if (site + 1) < n as u64 {
                        targets.push(site + 1);
                    }
                }
            }
            targets.sort_unstable();
            targets.dedup();
            if targets.is_empty() {
                unresolved.push(pc);
            }
            jr_targets[pc as usize] = Some(targets);
        }

        CallGraph {
            funcs,
            containing,
            jr_targets,
            unresolved,
        }
    }

    /// All discovered functions, sorted by entry PC. Function 0 is the
    /// `main` pseudo-function (entry 0) when the program is non-empty.
    pub fn functions(&self) -> &[Function] {
        &self.funcs
    }

    /// Indices into [`CallGraph::functions`] of every function whose
    /// body contains `pc` (empty for out-of-range or dead PCs).
    pub fn containing(&self, pc: u64) -> &[usize] {
        self.containing
            .get(pc as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Resolved return-site PCs for the `jr` at `pc`: `Some` (possibly
    /// empty — then also in [`CallGraph::unresolved_jumps`]) when `pc`
    /// holds a `jr`, `None` otherwise.
    pub fn jr_targets(&self, pc: u64) -> Option<&[u64]> {
        self.jr_targets.get(pc as usize).and_then(|t| t.as_deref())
    }

    /// PCs of `jr` instructions with no recorded `jal` return site, in
    /// ascending order.
    pub fn unresolved_jumps(&self) -> &[u64] {
        &self.unresolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_isa::asm::Builder;
    use mmt_isa::Reg;

    #[test]
    fn single_call_resolves_to_its_return_site() {
        let mut b = Builder::new();
        let func = b.label();
        b.jal(Reg::Ra, func); // 0
        b.halt(); // 1 (return site)
        b.bind(func);
        b.jr(Reg::Ra); // 2
        let cg = CallGraph::build(&b.build().unwrap());
        assert_eq!(cg.functions().len(), 2);
        assert_eq!(cg.functions()[0].entry, 0);
        assert_eq!(cg.functions()[1].entry, 2);
        assert_eq!(cg.functions()[1].call_sites, vec![0]);
        assert_eq!(cg.jr_targets(2), Some(&[1][..]));
        assert!(cg.unresolved_jumps().is_empty());
        assert_eq!(cg.jr_targets(0), None, "jal is not a jr");
    }

    #[test]
    fn two_callers_give_two_return_sites() {
        let mut b = Builder::new();
        let func = b.label();
        b.jal(Reg::Ra, func); // 0 → return site 1
        b.jal(Reg::Ra, func); // 1 → return site 2
        b.halt(); // 2
        b.bind(func);
        b.jr(Reg::Ra); // 3
        let cg = CallGraph::build(&b.build().unwrap());
        assert_eq!(cg.jr_targets(3), Some(&[1, 2][..]));
    }

    #[test]
    fn distinct_functions_do_not_share_return_sites() {
        let mut b = Builder::new();
        let (f, g) = (b.label(), b.label());
        b.jal(Reg::Ra, f); // 0 → site 1
        b.jal(Reg::Ra, g); // 1 → site 2
        b.halt(); // 2
        b.bind(f);
        b.jr(Reg::Ra); // 3
        b.bind(g);
        b.jr(Reg::Ra); // 4
        let cg = CallGraph::build(&b.build().unwrap());
        // The old whole-program over-approximation would have given each
        // jr both return sites; the call graph separates them.
        assert_eq!(cg.jr_targets(3), Some(&[1][..]));
        assert_eq!(cg.jr_targets(4), Some(&[2][..]));
    }

    #[test]
    fn jr_without_any_call_is_unresolved() {
        let mut b = Builder::new();
        b.addi(Reg::Ra, Reg::R0, 0);
        b.jr(Reg::Ra); // reachable only from main: no return sites
        let cg = CallGraph::build(&b.build().unwrap());
        assert_eq!(cg.jr_targets(1), Some(&[][..]));
        assert_eq!(cg.unresolved_jumps(), &[1]);
    }

    #[test]
    fn shared_tail_belongs_to_both_functions() {
        let mut b = Builder::new();
        let (f, g, tail) = (b.label(), b.label(), b.label());
        b.jal(Reg::Ra, f); // 0
        b.jal(Reg::Ra, g); // 1
        b.halt(); // 2
        b.bind(f);
        b.jmp(tail); // 3
        b.bind(g);
        b.jmp(tail); // 4
        b.bind(tail);
        b.jr(Reg::Ra); // 5
        let cg = CallGraph::build(&b.build().unwrap());
        assert_eq!(cg.containing(5).len(), 2, "tail shared by f and g");
        // The shared return may go back to either caller's return site.
        assert_eq!(cg.jr_targets(5), Some(&[1, 2][..]));
    }

    #[test]
    fn empty_program_has_no_functions() {
        let cg = CallGraph::build(&Program::from_insts(Vec::new()));
        assert!(cg.functions().is_empty());
        assert!(cg.unresolved_jumps().is_empty());
    }
}
