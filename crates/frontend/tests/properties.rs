//! Property-based tests for the front-end structures: the RAS against a
//! model stack, the FHB against a sliding-window model, and the
//! synchronization state machine's invariants under random event
//! sequences.

use mmt_frontend::{FetchSync, Fhb, Ras, SyncMode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ras_matches_a_bounded_stack(ops in prop::collection::vec(prop::option::of(0u64..1000), 1..200)) {
        const DEPTH: usize = 16;
        let mut ras = Ras::new(DEPTH);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    ras.push(addr);
                    model.push(addr);
                    if model.len() > DEPTH {
                        model.remove(0); // circular overwrite drops oldest
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), model.pop());
                }
            }
            prop_assert_eq!(ras.depth(), model.len());
        }
    }

    #[test]
    fn fhb_matches_a_sliding_window(targets in prop::collection::vec(0u64..64, 1..200)) {
        const CAP: usize = 8;
        let mut fhb = Fhb::new(CAP);
        let mut window: Vec<u64> = Vec::new();
        for &t in &targets {
            fhb.record(t);
            window.push(t);
            if window.len() > CAP {
                window.remove(0);
            }
            // Membership agrees with the window model.
            for probe in 0..64u64 {
                prop_assert_eq!(fhb.contains(probe), window.contains(&probe));
            }
        }
    }

    #[test]
    fn fhb_age_is_distance_from_newest(targets in prop::collection::vec(0u64..32, 1..40)) {
        let mut fhb = Fhb::new(64); // big enough to never evict here
        for &t in &targets {
            fhb.record(t);
        }
        // The age of the most recent record is 0; ages count backwards.
        let newest = *targets.last().unwrap();
        prop_assert_eq!(fhb.newest(), Some(newest));
        prop_assert_eq!(fhb.age_of(newest), Some(0));
        for (i, &t) in targets.iter().enumerate().rev() {
            let age = targets.len() - 1 - i;
            // age_of returns the *youngest* occurrence.
            if targets[i + 1..].contains(&t) {
                continue;
            }
            prop_assert_eq!(fhb.age_of(t), Some(age));
        }
    }

    #[test]
    fn sync_group_masks_always_partition(
        events in prop::collection::vec((0usize..4, 0u64..16), 1..120),
    ) {
        // Random taken-branch streams over 4 threads with occasional
        // divergences/merges; the group masks must always partition the
        // thread set and modes must stay consistent with mask sizes.
        let mut s = FetchSync::new(4, 8);
        let mut step = 0usize;
        for (t, target) in events {
            step += 1;
            if step.is_multiple_of(13) && s.is_merged(t) {
                // Split t out of its group.
                s.force_detect(t);
            } else if step.is_multiple_of(17) {
                let u = (t + 1) % 4;
                if s.group_mask(t) & (1 << u) == 0 {
                    s.merge(t, u);
                }
            } else {
                let _ = s.record_taken(t, target);
            }
            // Invariants.
            for a in 0..4usize {
                let mask = s.group_mask(a);
                prop_assert!(mask & (1 << a) != 0, "thread in its own group");
                // Everyone in my mask reports the same mask.
                for b in 0..4usize {
                    if mask & (1 << b) != 0 {
                        prop_assert_eq!(s.group_mask(b), mask);
                    }
                }
                match s.mode(a) {
                    SyncMode::Merge => prop_assert!(mask.count_ones() >= 2),
                    SyncMode::Detect => prop_assert_eq!(mask.count_ones(), 1),
                    SyncMode::Catchup { ahead } => {
                        prop_assert_eq!(mask.count_ones(), 1);
                        prop_assert!(ahead < 4 && ahead != a);
                    }
                }
            }
        }
    }
}
