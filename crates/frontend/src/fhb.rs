//! Fetch History Buffer.

/// The per-thread Fetch History Buffer: a small CAM of the targets of
/// recently *taken* branches (Section 4.1, Figure 3(b); Table 4 sizes it
/// at 32 entries).
///
/// While a thread is in DETECT or CATCHUP mode it records every taken
/// branch target here; other threads CAM-search it to discover that their
/// own fetch target lies on a path this thread already executed — the
/// remerge-point detection at the heart of MMT's fetch synchronization.
///
/// # Examples
///
/// ```
/// use mmt_frontend::Fhb;
/// let mut fhb = Fhb::new(32);
/// fhb.record(0x40);
/// fhb.record(0x80);
/// assert!(fhb.contains(0x40));
/// assert!(!fhb.contains(0x99));
/// ```
#[derive(Debug, Clone)]
pub struct Fhb {
    entries: Vec<u64>,
    valid: Vec<bool>,
    next: usize,
    records: u64,
    searches: u64,
}

impl Fhb {
    /// Create an empty buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Fhb {
        assert!(capacity > 0, "FHB capacity must be non-zero");
        Fhb {
            entries: vec![0; capacity],
            valid: vec![false; capacity],
            next: 0,
            records: 0,
            searches: 0,
        }
    }

    /// Record a taken-branch target, evicting the oldest entry when full.
    pub fn record(&mut self, target: u64) {
        self.entries[self.next] = target;
        self.valid[self.next] = true;
        self.next = (self.next + 1) % self.entries.len();
        self.records += 1;
    }

    /// CAM search: is `target` present? Counts an access (the energy model
    /// charges CAM searches, which only happen outside MERGE mode).
    pub fn contains(&mut self, target: u64) -> bool {
        self.age_of(target).is_some()
    }

    /// CAM search returning the *age* of the youngest matching entry
    /// (0 = most recently recorded). Counts an access.
    pub fn age_of(&mut self, target: u64) -> Option<usize> {
        self.searches += 1;
        let n = self.entries.len();
        for age in 0..n {
            let idx = (self.next + n - 1 - age) % n;
            if self.valid[idx] && self.entries[idx] == target {
                return Some(age);
            }
        }
        None
    }

    /// The most recently recorded target, if any.
    pub fn newest(&self) -> Option<u64> {
        let n = self.entries.len();
        let idx = (self.next + n - 1) % n;
        self.valid[idx].then(|| self.entries[idx])
    }

    /// Invalidate all entries (done when the owning thread re-merges or a
    /// fresh divergence begins).
    pub fn clear(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.next = 0;
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Whether no targets are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counts of `(records, CAM searches)` for energy accounting.
    pub fn activity(&self) -> (u64, u64) {
        (self.records, self.searches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_finds() {
        let mut f = Fhb::new(4);
        assert!(f.is_empty());
        f.record(10);
        f.record(20);
        assert_eq!(f.len(), 2);
        assert!(f.contains(10));
        assert!(f.contains(20));
        assert!(!f.contains(30));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut f = Fhb::new(2);
        f.record(1);
        f.record(2);
        f.record(3); // evicts 1
        assert!(!f.contains(1));
        assert!(f.contains(2));
        assert!(f.contains(3));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut f = Fhb::new(4);
        f.record(1);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(1));
        // Records again from scratch.
        f.record(9);
        assert!(f.contains(9));
    }

    #[test]
    fn activity_counts() {
        let mut f = Fhb::new(4);
        f.record(1);
        f.record(2);
        let _ = f.contains(1);
        let _ = f.contains(7);
        assert_eq!(f.activity(), (2, 2));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Fhb::new(0);
    }

    #[test]
    fn larger_fhb_remembers_longer_history() {
        // The Figure 7 tradeoff: a bigger CAM finds older remerge points.
        let mut small = Fhb::new(8);
        let mut large = Fhb::new(128);
        for t in 0..100 {
            small.record(t);
            large.record(t);
        }
        assert!(!small.contains(5), "small buffer forgot early targets");
        assert!(large.contains(5), "large buffer retains them");
    }
}
