//! Two-level adaptive branch predictor.
//!
//! Table 4 specifies a "2-level, 1024 Entry, History Length 10"
//! predictor. We implement the classic GAs/gshare organization: a
//! per-thread global history register (10 bits) XOR-folded with the branch
//! PC indexes a shared table of 1024 two-bit saturating counters.
//! Histories are per-thread so SMT threads do not scramble each other's
//! correlation (the pattern table is shared, as in real SMTs).

/// Geometry of the two-level predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Number of two-bit counters (must be a power of two).
    pub entries: usize,
    /// Global history length in bits.
    pub history_bits: u32,
}

impl PredictorConfig {
    /// The paper's configuration: 1024 entries, 10 bits of history.
    pub const fn paper() -> PredictorConfig {
        PredictorConfig {
            entries: 1024,
            history_bits: 10,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper()
    }
}

/// A gshare-style two-level predictor with per-thread history.
///
/// # Examples
///
/// ```
/// use mmt_frontend::TwoLevelPredictor;
/// let mut p = TwoLevelPredictor::new(Default::default(), 2);
/// // Train a strongly-taken branch for thread 0 (long enough for the
/// // 10-bit global history to saturate).
/// for _ in 0..20 { p.update(0, 100, true); }
/// assert!(p.predict(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelPredictor {
    cfg: PredictorConfig,
    /// Two-bit saturating counters; >=2 predicts taken.
    pht: Vec<u8>,
    /// Per-thread global history registers.
    histories: Vec<u64>,
    history_mask: u64,
    lookups: u64,
    correct: u64,
}

impl TwoLevelPredictor {
    /// Build a predictor for `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(cfg: PredictorConfig, threads: usize) -> TwoLevelPredictor {
        assert!(cfg.entries.is_power_of_two() && cfg.entries > 0);
        TwoLevelPredictor {
            cfg,
            pht: vec![1; cfg.entries], // weakly not-taken
            histories: vec![0; threads],
            history_mask: (1u64 << cfg.history_bits) - 1,
            lookups: 0,
            correct: 0,
        }
    }

    #[inline]
    fn index(&self, tid: usize, pc: u64) -> usize {
        let h = self.histories[tid] & self.history_mask;
        ((pc ^ h) & (self.cfg.entries as u64 - 1)) as usize
    }

    /// Predict the direction of the branch at `pc` for thread `tid`.
    pub fn predict(&self, tid: usize, pc: u64) -> bool {
        self.pht[self.index(tid, pc)] >= 2
    }

    /// Update with the resolved outcome; also records accuracy
    /// statistics (a lookup + update pair per dynamic branch).
    pub fn update(&mut self, tid: usize, pc: u64, taken: bool) {
        let idx = self.index(tid, pc);
        let predicted = self.pht[idx] >= 2;
        self.lookups += 1;
        if predicted == taken {
            self.correct += 1;
        }
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let h = &mut self.histories[tid];
        *h = ((*h << 1) | taken as u64) & self.history_mask;
    }

    /// Fraction of updates whose pre-update prediction was correct.
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }

    /// Dynamic branches observed.
    pub fn branches_seen(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        // History must saturate (10 bits) before the index stabilizes,
        // so train past the history length.
        let mut p = TwoLevelPredictor::new(PredictorConfig::paper(), 1);
        for _ in 0..20 {
            p.update(0, 64, true);
        }
        assert!(p.predict(0, 64));
        for _ in 0..20 {
            p.update(0, 64, false);
        }
        assert!(!p.predict(0, 64));
    }

    #[test]
    fn learns_alternating_pattern_through_history() {
        // A strict alternation is perfectly predictable with >=1 bit of
        // history; verify the two-level structure captures it.
        let mut p = TwoLevelPredictor::new(PredictorConfig::paper(), 1);
        let mut taken = false;
        // Warm up.
        for _ in 0..64 {
            p.update(0, 200, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..64 {
            if p.predict(0, 200) == taken {
                correct += 1;
            }
            p.update(0, 200, taken);
            taken = !taken;
        }
        assert!(correct >= 60, "only {correct}/64 correct");
    }

    #[test]
    fn per_thread_histories_are_independent() {
        let mut p = TwoLevelPredictor::new(PredictorConfig::paper(), 2);
        // Thread 1 hammers unrelated outcomes; thread 0's biased branch
        // must still be learned (same PHT, different history => different
        // index with high probability; we assert the end-to-end effect).
        for i in 0..256 {
            p.update(0, 64, true);
            p.update(1, 64, i % 3 == 0);
        }
        assert!(p.predict(0, 64));
    }

    #[test]
    fn accuracy_counts() {
        let mut p = TwoLevelPredictor::new(PredictorConfig::paper(), 1);
        for _ in 0..100 {
            p.update(0, 8, true);
        }
        assert!(p.accuracy() > 0.8); // ~11 warm-up misses while history fills
        assert_eq!(p.branches_seen(), 100);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_entries_panics() {
        let _ = TwoLevelPredictor::new(
            PredictorConfig {
                entries: 1000,
                history_bits: 10,
            },
            1,
        );
    }
}
