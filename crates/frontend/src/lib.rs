//! # mmt-frontend — fetch-engine components
//!
//! The paper's front end (Table 4 and Section 4.1) consists of a 2-level
//! branch predictor (1024 entries, 10 bits of history), a 2048-entry BTB,
//! a 16-entry return address stack, and — the MMT addition — a per-thread
//! 32-entry *Fetch History Buffer* CAM driving the MERGE / DETECT /
//! CATCHUP fetch-synchronization state machine (Figure 3).
//!
//! This crate implements each of those components plus [`FetchSync`], the
//! bookkeeping for which threads are currently merged, which are hunting
//! for a remerge point (DETECT), and which are catching up to another
//! thread (CATCHUP). The cycle-level fetch engine in `mmt-sim` drives
//! these pieces; everything here is deterministic and standalone-testable.

#![warn(missing_docs)]

pub mod bpred;
pub mod btb;
pub mod fhb;
pub mod ras;
pub mod sync;

pub use bpred::{PredictorConfig, TwoLevelPredictor};
pub use btb::Btb;
pub use fhb::Fhb;
pub use ras::Ras;
pub use sync::{FetchSync, SyncEvent, SyncMode};
