//! Branch target buffer.

/// A direct-mapped branch target buffer (Table 4: 2048 entries).
///
/// Maps a branch/jump PC to its most recent taken target so the fetch
/// engine can redirect in the same cycle. Tagged with the full PC, so
/// aliasing produces a miss rather than a wrong target (the fetch engine
/// then falls through and pays a redirect when the branch resolves).
///
/// # Examples
///
/// ```
/// use mmt_frontend::Btb;
/// let mut btb = Btb::new(2048);
/// assert_eq!(btb.lookup(10), None);
/// btb.update(10, 42);
/// assert_eq!(btb.lookup(10), Some(42));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc tag, target)
    mask: u64,
}

impl Btb {
    /// Create an empty BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two() && entries > 0);
        Btb {
            entries: vec![None; entries],
            mask: entries as u64 - 1,
        }
    }

    /// Predicted target for the control instruction at `pc`, if known.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[(pc & self.mask) as usize] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Record that `pc` redirected to `target`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.entries[(pc & self.mask) as usize] = Some((pc, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_overwrites() {
        let mut b = Btb::new(8);
        b.update(3, 100);
        assert_eq!(b.lookup(3), Some(100));
        b.update(3, 200);
        assert_eq!(b.lookup(3), Some(200));
    }

    #[test]
    fn aliasing_is_a_miss_not_a_lie() {
        let mut b = Btb::new(8);
        b.update(3, 100);
        b.update(11, 500); // same slot (3 & 7 == 11 & 7)
        assert_eq!(b.lookup(3), None, "evicted by alias");
        assert_eq!(b.lookup(11), Some(500));
    }

    #[test]
    #[should_panic]
    fn zero_entries_panics() {
        let _ = Btb::new(0);
    }
}
