//! The MERGE / DETECT / CATCHUP fetch-synchronization state machine
//! (paper Section 4.1, Figure 3(a)).
//!
//! * **MERGE** — two or more threads have identical PCs and fetch as one
//!   group; fetched instructions carry the group's ITID mask.
//! * **DETECT** — a thread fetches independently after a divergence. On
//!   every taken branch it records the target in its own [`Fhb`] and
//!   CAM-searches the other threads' FHBs for that target; a hit means the
//!   other thread already executed this point, i.e. the paths have
//!   remerged somewhere behind the other thread.
//! * **CATCHUP** — the "behind" thread (whose target hit in another's
//!   FHB) receives boosted fetch priority while the "ahead" thread is
//!   throttled, until their PCs meet (→ MERGE) or the behind thread's
//!   next taken target misses the ahead thread's FHB (false positive →
//!   DETECT).
//!
//! [`FetchSync`] owns the per-thread modes, merge-group masks and FHBs;
//! the fetch engine in `mmt-sim` drives it with divergence, taken-branch
//! and PC-equality events.

use crate::fhb::Fhb;

/// A thread's current fetch-synchronization mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// Fetching as part of a merged group (the mask has >= 2 bits set).
    Merge,
    /// Fetching independently, hunting for a remerge point.
    Detect,
    /// Catching up to thread `ahead` after a remerge-point hit.
    Catchup {
        /// The thread whose FHB contained this thread's branch target.
        ahead: usize,
    },
}

/// Notable transitions returned by [`FetchSync::record_taken`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// No mode change.
    None,
    /// The thread found its target in `ahead`'s FHB and entered CATCHUP.
    CatchupEntered {
        /// The thread that is now catching up.
        behind: usize,
        /// The thread it is catching up to.
        ahead: usize,
    },
    /// A CATCHUP turned out to be a false positive; back to DETECT.
    CatchupAborted {
        /// The thread that fell back to DETECT.
        thread: usize,
    },
}

/// Fetch-synchronization bookkeeping for up to [`mmt_isa::MAX_THREADS`]
/// hardware threads.
///
/// # Examples
///
/// ```
/// use mmt_frontend::{FetchSync, SyncMode, SyncEvent};
/// let mut s = FetchSync::new(2, 32);
/// assert_eq!(s.mode(0), SyncMode::Merge); // SPMD threads start merged
///
/// // The threads take different directions at a branch: both singleton.
/// s.diverge(&[0b01, 0b10]);
/// assert_eq!(s.mode(0), SyncMode::Detect);
///
/// // Thread 1 passes target 0x40; later thread 0 branches to 0x40 too.
/// s.record_taken(1, 0x40);
/// let ev = s.record_taken(0, 0x40);
/// assert_eq!(ev, SyncEvent::CatchupEntered { behind: 0, ahead: 1 });
///
/// // Their PCs meet: remerge.
/// s.merge(0, 1);
/// assert_eq!(s.mode(0), SyncMode::Merge);
/// assert_eq!(s.group_mask(0), 0b11);
/// ```
#[derive(Debug, Clone)]
pub struct FetchSync {
    n: usize,
    modes: Vec<SyncMode>,
    /// Per-thread mask of the merge group it belongs to (bit t set for a
    /// singleton thread t).
    groups: Vec<u8>,
    fhbs: Vec<Fhb>,
    /// Taken branches seen by each thread since entering CATCHUP (bounded
    /// chases: a catch-up that runs too long is declared a false
    /// positive).
    catchup_steps: Vec<u32>,
    catchups_entered: u64,
    catchups_aborted: u64,
    merges: u64,
    divergences: u64,
}

impl FetchSync {
    /// Create state for `threads` threads, all initially merged into one
    /// group (the SPMD start-of-program condition), with `fhb_entries`
    /// per-thread FHB capacity.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds 8 (ITID masks are `u8`).
    pub fn new(threads: usize, fhb_entries: usize) -> FetchSync {
        assert!((1..=8).contains(&threads), "1..=8 threads supported");
        let all = ((1u16 << threads) - 1) as u8;
        let mode = if threads == 1 {
            SyncMode::Detect
        } else {
            SyncMode::Merge
        };
        FetchSync {
            n: threads,
            modes: vec![mode; threads],
            groups: vec![all; threads],
            fhbs: (0..threads).map(|_| Fhb::new(fhb_entries)).collect(),
            catchup_steps: vec![0; threads],
            catchups_entered: 0,
            catchups_aborted: 0,
            merges: 0,
            divergences: 0,
        }
    }

    /// Number of threads tracked.
    pub fn threads(&self) -> usize {
        self.n
    }

    /// Current mode of thread `t`.
    pub fn mode(&self, t: usize) -> SyncMode {
        self.modes[t]
    }

    /// Mask of the merge group containing `t` (just `1 << t` when
    /// unmerged).
    pub fn group_mask(&self, t: usize) -> u8 {
        self.groups[t]
    }

    /// Whether `t` currently fetches as part of a multi-thread group.
    pub fn is_merged(&self, t: usize) -> bool {
        self.groups[t].count_ones() >= 2
    }

    /// Whether `t` should receive *boosted* fetch priority (it is the
    /// behind thread of a CATCHUP).
    pub fn boosted(&self, t: usize) -> bool {
        matches!(self.modes[t], SyncMode::Catchup { .. })
    }

    /// Whether `t` should receive *reduced* fetch priority (some other
    /// thread is catching up to it).
    pub fn throttled(&self, t: usize) -> bool {
        self.modes
            .iter()
            .any(|m| matches!(m, SyncMode::Catchup { ahead } if *ahead == t))
    }

    /// Split a merged group whose members resolved a branch differently.
    ///
    /// `parts` are the sub-masks, one per distinct next-PC; they must
    /// partition the old group. Multi-thread parts remain merged with the
    /// narrower mask; singleton parts enter DETECT with a cleared FHB.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `parts` is not a partition of one current group.
    pub fn diverge(&mut self, parts: &[u8]) {
        debug_assert!(!parts.is_empty());
        let whole: u8 = parts.iter().fold(0, |a, &p| {
            debug_assert_eq!(a & p, 0, "parts overlap");
            a | p
        });
        debug_assert!(
            (0..self.n)
                .filter(|&t| whole & (1 << t) != 0)
                .all(|t| self.groups[t] == whole),
            "parts must partition one existing group"
        );
        self.divergences += 1;
        for &part in parts {
            for t in 0..self.n {
                if part & (1 << t) == 0 {
                    continue;
                }
                self.groups[t] = part;
                if part.count_ones() >= 2 {
                    self.modes[t] = SyncMode::Merge;
                } else {
                    self.modes[t] = SyncMode::Detect;
                    self.fhbs[t].clear();
                }
            }
        }
    }

    /// A DETECT/CATCHUP thread executed a taken branch to `target`:
    /// record it and run the remerge-point CAM search.
    ///
    /// Calls on merged threads are ignored (the hardware does not record
    /// FHB entries in MERGE mode) and return [`SyncEvent::None`].
    pub fn record_taken(&mut self, t: usize, target: u64) -> SyncEvent {
        match self.modes[t] {
            SyncMode::Merge => SyncEvent::None,
            SyncMode::Detect => {
                self.fhbs[t].record(target);
                // CAM-search every other thread's history (merged threads
                // have empty FHBs, so searching them is harmless). A
                // thread that is itself catching up to `t` is skipped:
                // mutual catch-up would throttle both threads.
                for u in 0..self.n {
                    if u == t || self.modes[u] == (SyncMode::Catchup { ahead: t }) {
                        continue;
                    }
                    if !self.fhbs[u].contains(target) {
                        continue;
                    }
                    // Note: inside a loop both threads' targets appear in
                    // both FHBs, so the hit alone cannot say who is
                    // behind; the fetch engine validates the direction
                    // with progress counters and cancels bogus entries.
                    self.modes[t] = SyncMode::Catchup { ahead: u };
                    self.catchup_steps[t] = 0;
                    self.catchups_entered += 1;
                    return SyncEvent::CatchupEntered {
                        behind: t,
                        ahead: u,
                    };
                }
                SyncEvent::None
            }
            SyncMode::Catchup { ahead } => {
                self.fhbs[t].record(target);
                self.catchup_steps[t] += 1;
                let bound = 2 * self.fhbs[t].capacity() as u32;
                if self.fhbs[ahead].contains(target) && self.catchup_steps[t] <= bound {
                    SyncEvent::None
                } else {
                    // Either a false positive (the shared path ended) or
                    // the chase ran past any plausible remerge distance.
                    self.modes[t] = SyncMode::Detect;
                    self.catchups_aborted += 1;
                    SyncEvent::CatchupAborted { thread: t }
                }
            }
        }
    }

    /// Merge thread `a`'s group with thread `b`'s group (their PCs are
    /// equal). Clears every member's FHB and cancels CATCHUPs that
    /// targeted the merged members from inside the new group. Returns the
    /// union mask of the new group.
    pub fn merge(&mut self, a: usize, b: usize) -> u8 {
        let mask = self.groups[a] | self.groups[b];
        self.merges += 1;
        for t in 0..self.n {
            if mask & (1 << t) != 0 {
                self.groups[t] = mask;
                self.modes[t] = SyncMode::Merge;
                self.fhbs[t].clear();
            }
        }
        // Any thread catching up to a member keeps its CATCHUP; the
        // member's PC is still meaningful (it is the group PC now).
        mask
    }

    /// Cancel an in-progress CATCHUP (the fetch engine detected it is
    /// running in the wrong direction — in a loop, *both* threads' branch
    /// targets appear in each other's FHB, so the FHB hit alone cannot
    /// tell which thread is behind; the engine disambiguates with
    /// retired-instruction counters and cancels bogus catch-ups).
    pub fn cancel_catchup(&mut self, t: usize) {
        if matches!(self.modes[t], SyncMode::Catchup { .. }) {
            self.modes[t] = SyncMode::Detect;
            self.catchups_aborted += 1;
        }
    }

    /// Force thread `t` out of any group into DETECT (used when `t` halts
    /// or its CATCHUP partner halts).
    pub fn force_detect(&mut self, t: usize) {
        let mask = self.groups[t];
        if mask.count_ones() >= 2 {
            // Leave the rest of the group intact.
            let rest = mask & !(1 << t);
            for u in 0..self.n {
                if rest & (1 << u) != 0 {
                    self.groups[u] = rest;
                    if rest.count_ones() < 2 {
                        self.modes[u] = SyncMode::Detect;
                        self.fhbs[u].clear();
                    }
                }
            }
        }
        self.groups[t] = 1 << t;
        self.modes[t] = SyncMode::Detect;
        self.fhbs[t].clear();
        // Anyone catching up to t must fall back to DETECT.
        for u in 0..self.n {
            if matches!(self.modes[u], SyncMode::Catchup { ahead } if ahead == t) {
                self.modes[u] = SyncMode::Detect;
            }
        }
    }

    /// Lifetime totals: `(catchups entered, catchups aborted, merges,
    /// divergences)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.catchups_entered,
            self.catchups_aborted,
            self.merges,
            self.divergences,
        )
    }

    /// Total FHB activity `(records, CAM searches)` across threads, for
    /// the energy model.
    pub fn fhb_activity(&self) -> (u64, u64) {
        self.fhbs
            .iter()
            .map(|f| f.activity())
            .fold((0, 0), |(r, s), (r2, s2)| (r + r2, s + s2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_merged() {
        let s = FetchSync::new(4, 32);
        for t in 0..4 {
            assert_eq!(s.mode(t), SyncMode::Merge);
            assert_eq!(s.group_mask(t), 0b1111);
            assert!(s.is_merged(t));
        }
    }

    #[test]
    fn single_thread_starts_detect() {
        let s = FetchSync::new(1, 32);
        assert_eq!(s.mode(0), SyncMode::Detect);
        assert!(!s.is_merged(0));
    }

    #[test]
    fn two_way_divergence() {
        let mut s = FetchSync::new(2, 32);
        s.diverge(&[0b01, 0b10]);
        assert_eq!(s.mode(0), SyncMode::Detect);
        assert_eq!(s.mode(1), SyncMode::Detect);
        assert_eq!(s.group_mask(0), 0b01);
        assert_eq!(s.stats().3, 1);
    }

    #[test]
    fn four_way_partial_divergence_keeps_subgroup_merged() {
        let mut s = FetchSync::new(4, 32);
        s.diverge(&[0b0011, 0b0100, 0b1000]);
        assert!(s.is_merged(0) && s.is_merged(1));
        assert_eq!(s.group_mask(0), 0b0011);
        assert_eq!(s.mode(2), SyncMode::Detect);
        assert_eq!(s.mode(3), SyncMode::Detect);
    }

    #[test]
    fn detect_to_catchup_to_merge() {
        let mut s = FetchSync::new(2, 32);
        s.diverge(&[0b01, 0b10]);
        // Thread 1 runs ahead through targets 100, 200, 300.
        for t in [100, 200, 300] {
            assert_eq!(s.record_taken(1, t), SyncEvent::None);
        }
        // Thread 0 reaches 200 — a point thread 1 passed.
        let ev = s.record_taken(0, 200);
        assert_eq!(
            ev,
            SyncEvent::CatchupEntered {
                behind: 0,
                ahead: 1
            }
        );
        assert!(s.boosted(0));
        assert!(s.throttled(1));
        // Next taken branch of thread 0 also on thread 1's path: stays.
        assert_eq!(s.record_taken(0, 300), SyncEvent::None);
        assert_eq!(s.mode(0), SyncMode::Catchup { ahead: 1 });
        // PCs meet.
        s.merge(0, 1);
        assert!(s.is_merged(0));
        assert_eq!(s.mode(1), SyncMode::Merge);
        assert_eq!(s.stats().2, 1);
    }

    #[test]
    fn catchup_false_positive_falls_back() {
        let mut s = FetchSync::new(2, 32);
        s.diverge(&[0b01, 0b10]);
        s.record_taken(1, 100);
        assert!(matches!(
            s.record_taken(0, 100),
            SyncEvent::CatchupEntered { .. }
        ));
        // Thread 0 then branches somewhere thread 1 never went.
        assert_eq!(
            s.record_taken(0, 999),
            SyncEvent::CatchupAborted { thread: 0 }
        );
        assert_eq!(s.mode(0), SyncMode::Detect);
        assert_eq!(s.stats(), (1, 1, 0, 1));
    }

    #[test]
    fn merged_threads_do_not_record() {
        let mut s = FetchSync::new(2, 32);
        assert_eq!(s.record_taken(0, 42), SyncEvent::None);
        s.diverge(&[0b01, 0b10]);
        // Target 42 was never recorded (thread was merged then):
        assert_eq!(s.record_taken(1, 42), SyncEvent::None);
    }

    #[test]
    fn merge_clears_fhbs() {
        let mut s = FetchSync::new(2, 32);
        s.diverge(&[0b01, 0b10]);
        s.record_taken(1, 100);
        s.record_taken(0, 100); // catchup
        s.merge(0, 1);
        s.diverge(&[0b01, 0b10]);
        // Old entries must not produce remerge hits.
        assert_eq!(s.record_taken(0, 100), SyncEvent::None);
    }

    #[test]
    fn force_detect_breaks_group_and_catchups() {
        let mut s = FetchSync::new(4, 32);
        // 0+1 merged, 2 and 3 independent.
        s.diverge(&[0b0011, 0b0100, 0b1000]);
        s.record_taken(0, 7); // ignored: merged
        s.record_taken(2, 500);
        assert!(matches!(
            s.record_taken(3, 500),
            SyncEvent::CatchupEntered {
                behind: 3,
                ahead: 2
            }
        ));
        s.force_detect(2); // thread 2 halts
        assert_eq!(
            s.mode(3),
            SyncMode::Detect,
            "catchup to halted thread dropped"
        );
        // Breaking a 2-group demotes the survivor to Detect.
        s.force_detect(0);
        assert_eq!(s.mode(1), SyncMode::Detect);
        assert_eq!(s.group_mask(1), 0b0010);
    }

    #[test]
    fn three_member_group_survives_one_leaving() {
        let mut s = FetchSync::new(4, 32);
        s.diverge(&[0b0111, 0b1000]);
        s.force_detect(0);
        assert_eq!(s.group_mask(1), 0b0110);
        assert!(s.is_merged(1));
        assert!(s.is_merged(2));
        assert_eq!(s.mode(0), SyncMode::Detect);
    }

    #[test]
    #[should_panic]
    fn too_many_threads_panics() {
        let _ = FetchSync::new(9, 32);
    }
}
