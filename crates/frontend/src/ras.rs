//! Return address stack.

/// A fixed-depth return address stack (Table 4: 16 entries), one per
/// hardware thread.
///
/// `jal` pushes the return address; `jr` pops the prediction. On overflow
/// the oldest entry is silently overwritten (standard circular RAS), so a
/// deep call chain degrades gracefully into mispredictions rather than
/// stalls.
///
/// # Examples
///
/// ```
/// use mmt_frontend::Ras;
/// let mut ras = Ras::new(16);
/// ras.push(101);
/// ras.push(202);
/// assert_eq!(ras.pop(), Some(202));
/// assert_eq!(ras.pop(), Some(101));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    slots: Vec<u64>,
    top: usize,  // next push position
    live: usize, // number of valid entries (<= capacity)
}

impl Ras {
    /// Create an empty stack of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Ras {
        assert!(depth > 0, "RAS depth must be non-zero");
        Ras {
            slots: vec![0; depth],
            top: 0,
            live: 0,
        }
    }

    /// Push a return address (a call).
    pub fn push(&mut self, addr: u64) {
        self.slots[self.top] = addr;
        self.top = (self.top + 1) % self.slots.len();
        self.live = (self.live + 1).min(self.slots.len());
    }

    /// Pop the predicted return address, or `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.live -= 1;
        Some(self.slots[self.top])
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(4);
        for v in [1, 2, 3] {
            r.push(v);
        }
        assert_eq!(r.depth(), 3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "oldest entry was lost");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_depth_panics() {
        let _ = Ras::new(0);
    }
}
