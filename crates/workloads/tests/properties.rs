//! Property-based tests for workload generation: every valid spec yields
//! a program in which all threads terminate, with deterministic inputs,
//! and SPMD-consistent common state.

use mmt_isa::interp::Machine;
use mmt_isa::MemSharing;
use mmt_workloads::generator::{generate, R_CACC, R_K};
use mmt_workloads::{data, DivergenceProfile, KernelSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = KernelSpec> {
    (
        (
            any::<bool>(),                             // sharing
            1usize..6,                                 // common_alu
            0usize..3,                                 // common_fpu
            0usize..3,                                 // common_loads
            0usize..6,                                 // private_alu
            0usize..3,                                 // private_loads
            0usize..2,                                 // stores
            prop::sample::select(vec![0u64, 2, 5, 9]), // divergence_inv
        ),
        (
            any::<bool>(), // partitioned (MT only)
            any::<bool>(), // calls
            0u8..=100,     // me_ident (ME only)
            any::<bool>(), // pointer_chase
            1i64..4,       // inner_iters
            1usize..4,     // unroll
            any::<u64>(),  // seed
        ),
    )
        .prop_map(
            |((mt, ca, cf, cl, pa, pl, st, div), (part, calls, me, chase, inner, unroll, seed))| {
                let sharing = if mt {
                    MemSharing::Shared
                } else {
                    MemSharing::PerThread
                };
                KernelSpec {
                    sharing,
                    iters: 6,
                    common_alu: ca,
                    common_fpu: cf,
                    common_loads: cl,
                    private_alu: pa,
                    private_loads: pl,
                    stores: st,
                    divergence_inv: div,
                    divergence: DivergenceProfile::Short,
                    index_partitioned: part && sharing == MemSharing::Shared,
                    calls,
                    me_ident_pct: if sharing == MemSharing::PerThread {
                        me
                    } else {
                        0
                    },
                    pointer_chase: chase,
                    ws_words: 256,
                    inner_iters: inner,
                    unroll,
                    barrier_every: 0,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_valid_spec_terminates_for_all_threads(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok());
        let threads = 2;
        let prog = generate(&spec, threads, spec.iters);
        let mut mems = data::build_memories(&spec, threads, false);
        for t in 0..threads {
            let mem = match spec.sharing {
                MemSharing::Shared => &mut mems[0],
                MemSharing::PerThread => &mut mems[t],
            };
            let mut m = Machine::new(t);
            m.run(&prog, mem, 5_000_000).expect("no faults");
            prop_assert!(m.halted(), "thread {t} did not halt");
            prop_assert!(m.retired() > 0);
        }
    }

    #[test]
    fn common_counter_is_identical_across_threads(spec in arb_spec()) {
        let threads = 2;
        let prog = generate(&spec, threads, spec.iters);
        let mut mems = data::build_memories(&spec, threads, false);
        let mut ks = Vec::new();
        let mut caccs = Vec::new();
        for t in 0..threads {
            let mem = match spec.sharing {
                MemSharing::Shared => &mut mems[0],
                MemSharing::PerThread => &mut mems[t],
            };
            let mut m = Machine::new(t);
            m.run(&prog, mem, 5_000_000).expect("no faults");
            ks.push(m.reg(R_K));
            caccs.push(m.reg(R_CACC));
        }
        // The common counter is identical by construction.
        prop_assert_eq!(ks[0], ks[1]);
        // The common accumulator is identical whenever the common data is
        // (always for MT shared loads; for non-partitioned kernels only).
        if spec.sharing == MemSharing::Shared && !spec.index_partitioned {
            prop_assert_eq!(caccs[0], caccs[1]);
        }
    }

    #[test]
    fn memory_generation_is_deterministic(spec in arb_spec()) {
        let a = data::build_memories(&spec, 2, false);
        let b = data::build_memories(&spec, 2, false);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            for w in 0..512u64 {
                let addr = mmt_workloads::spec::layout::SHARED_BASE as u64 + w;
                prop_assert_eq!(x.load(addr).unwrap(), y.load(addr).unwrap());
            }
        }
    }
}
