//! Every program the kernel generator emits must be lint-clean: the
//! `mmt-analysis` linter finds no errors (out-of-range targets, missing
//! halts, reserved-region stores) in any suite application at any thread
//! count, nor in arbitrary valid [`KernelSpec`]s.

use mmt_analysis::lint_program;
use mmt_isa::MemSharing;
use mmt_workloads::spec::{layout, DivergenceProfile, KernelSpec};
use mmt_workloads::{all_apps, generator};
use proptest::prelude::*;

fn assert_no_errors(prog: &mmt_isa::Program, context: &str) {
    let errors: Vec<String> = lint_program(prog)
        .iter()
        .filter(|l| l.is_error())
        .map(|l| l.to_string())
        .collect();
    assert!(errors.is_empty(), "{context}: {errors:?}");
}

#[test]
fn every_suite_app_is_lint_clean_at_every_thread_count() {
    for app in all_apps() {
        for threads in 1..=4 {
            for scale in [1, 16] {
                let w = app.instance(threads, scale);
                assert_no_errors(
                    &w.program,
                    &format!("{} ({threads} threads, /{scale})", app.name),
                );
            }
        }
    }
}

#[test]
fn limit_instances_are_lint_clean() {
    for app in all_apps() {
        let w = app.limit_instance(2, 16);
        assert_no_errors(&w.program, &format!("{} (limit)", app.name));
    }
}

/// Valid spec knob combinations, mirroring [`KernelSpec::validate`].
fn arb_spec() -> impl Strategy<Value = KernelSpec> {
    (
        any::<bool>(), // shared vs per-thread
        1u64..64,      // iters
        0usize..6,     // common_alu
        0usize..3,     // common_fpu
        0usize..3,     // common_loads
        0usize..6,     // private_alu
        0usize..3,     // private_loads
        0usize..3,     // stores
        0u32..3,       // divergence_inv selector (0 disables)
        any::<bool>(), // index_partitioned (mt only)
        any::<bool>(), // calls
        any::<bool>(), // pointer_chase
        (4u32..=11),   // ws_words = 1 << exp, up to PRIV_SIZE
        1i64..4,       // inner_iters
        1usize..3,     // unroll
        0u32..2,       // barrier selector (0 disables)
    )
        .prop_map(
            |(
                shared,
                iters,
                common_alu,
                common_fpu,
                common_loads,
                private_alu,
                private_loads,
                stores,
                div_sel,
                index_partitioned,
                calls,
                pointer_chase,
                ws_exp,
                inner_iters,
                unroll,
                barrier_sel,
            )| {
                let sharing = if shared {
                    MemSharing::Shared
                } else {
                    MemSharing::PerThread
                };
                KernelSpec {
                    sharing,
                    iters,
                    common_alu,
                    common_fpu,
                    common_loads,
                    private_alu,
                    private_loads,
                    stores,
                    divergence_inv: [0, 8, 32][div_sel as usize],
                    divergence: DivergenceProfile::Short,
                    index_partitioned: index_partitioned && shared,
                    calls,
                    me_ident_pct: if shared { 0 } else { 50 },
                    pointer_chase,
                    ws_words: 1 << ws_exp,
                    inner_iters,
                    unroll,
                    barrier_every: if shared && barrier_sel == 1 { 4 } else { 0 },
                    seed: 7,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_valid_specs_generate_lint_clean_programs(
        spec in arb_spec(),
        threads in 1usize..=4,
    ) {
        prop_assert!(spec.validate().is_ok(), "strategy must build valid specs");
        let prog = generator::generate(&spec, threads, spec.iters);
        let errors: Vec<String> = lint_program(&prog)
            .iter()
            .filter(|l| l.is_error())
            .map(|l| l.to_string())
            .collect();
        prop_assert!(errors.is_empty(), "{spec:?}: {errors:?}");
    }
}

#[test]
fn linter_constants_match_workload_layout() {
    // The linter duplicates the reserved-region bound (it cannot depend
    // on this crate); this pins the two constants together.
    assert_eq!(
        mmt_analysis::lint::RESERVED_WORDS,
        layout::SHARED_BASE as u64
    );
}

#[test]
fn every_suite_app_has_a_well_formed_prediction() {
    for app in all_apps() {
        for threads in [2usize, 4] {
            let w = app.instance(threads, 16);
            let p = mmt_analysis::predict(&w.program, w.sharing, threads);
            let ctx = format!("{} ({threads} threads)", app.name);
            assert!(p.reachable_insts > 0, "{ctx}: empty reachable set");
            assert!(
                0.0 <= p.merge_frac_lower
                    && p.merge_frac_lower <= p.merge_frac_est
                    && p.merge_frac_est <= p.merge_frac_upper
                    && p.merge_frac_upper <= 1.0,
                "{ctx}: bounds out of order: {p:?}"
            );
            assert!(
                0.0 <= p.savings_lower && p.savings_lower <= p.savings_upper,
                "{ctx}: savings bounds out of order: {p:?}"
            );
            assert!(
                p.savings_upper <= (threads as f64 - 1.0) / threads as f64 + 1e-12,
                "{ctx}: cannot save more than (t-1)/t of the work: {p:?}"
            );
            assert!(
                (1.0 - 1e-12..=threads as f64 + 1e-12).contains(&p.expected_split_degree),
                "{ctx}: split degree outside [1, t]: {p:?}"
            );
            assert_eq!(
                p.unresolved_jumps, 0,
                "{ctx}: generator programs are call-disciplined"
            );
            if app.spec.calls {
                assert!(
                    p.functions >= 2,
                    "{ctx}: call-wrapped kernel should split into functions: {p:?}"
                );
            }
        }
    }
}
