//! The kernel-skeleton program generator.
//!
//! One loop-nest skeleton serves every synthetic application; the
//! [`KernelSpec`] knobs select how much of each iteration operates on
//! thread-identical values, how much on thread-varying values, how the
//! induction variable is partitioned, and how divergence is triggered.
//!
//! Register conventions (see the constants below): the generated code
//! never touches registers outside its convention, so tests can inspect
//! accumulators after a run.

use crate::spec::{layout, KernelSpec};
use mmt_isa::asm::Builder;
use mmt_isa::{AluOp, FpuOp, MemSharing, Program, Reg};

/// Loop index register (`i`).
pub const R_I: Reg = Reg::R1;
/// Loop bound register.
pub const R_BOUND: Reg = Reg::R2;
/// Common iteration counter (`k` — identical in every thread).
pub const R_K: Reg = Reg::R3;
/// Shared-region base register.
pub const R_SHARED: Reg = Reg::R4;
/// Private-region base register.
pub const R_PRIV: Reg = Reg::R5;
/// Flag-region base register.
pub const R_FLAG: Reg = Reg::R6;
/// Output-region base register.
pub const R_OUT: Reg = Reg::R7;
/// Inner-loop counter register.
pub const R_INNER: Reg = Reg::R8;
/// Global step counter (total inner iterations executed; common across
/// threads). The kernels have no call stack, so the register named `sp`
/// is free to serve as an ordinary counter.
pub const R_STEP: Reg = Reg::Sp;
/// Partitioned-kernel common accumulator (pure function of the common
/// counters; see `emit_body`).
pub const R_KACC: Reg = Reg::R29;
/// Common accumulator (identical across threads when inputs are).
pub const R_CACC: Reg = Reg::R9;
/// Private accumulator (thread-varying).
pub const R_PACC: Reg = Reg::R10;
/// Hardware thread id (multi-threaded kernels only).
pub const R_TID: Reg = Reg::R28;
/// Barrier: address of this thread's rendezvous slot (barrier kernels
/// only). `r11` is only used as a prologue scratch otherwise.
pub const R_BARRIER: Reg = Reg::R11;

const COMMON_SCRATCH: [Reg; 6] = [Reg::R13, Reg::R14, Reg::R15, Reg::R16, Reg::R17, Reg::R18];
const PRIVATE_SCRATCH: [Reg; 5] = [Reg::R21, Reg::R22, Reg::R23, Reg::R24, Reg::R19];

/// Generate the program for `spec` running `threads` hardware threads at
/// the given iteration count (already scaled).
///
/// # Panics
///
/// Panics if the spec fails [`KernelSpec::validate`] — app definitions
/// are static, so an invalid spec is a programming error.
pub fn generate(spec: &KernelSpec, threads: usize, iters: u64) -> Program {
    generate_with_hints(spec, threads, iters).0
}

/// Like [`generate`], also returning the program's static remerge-point
/// PCs (the control-flow joins after its divergent branches) — the
/// software hints a Thread Fusion-style system would get from the
/// compiler (`mmt_sim`'s `SyncPolicy::SoftwareHints`).
///
/// # Panics
///
/// Panics if the spec fails [`KernelSpec::validate`].
pub fn generate_with_hints(spec: &KernelSpec, threads: usize, iters: u64) -> (Program, Vec<u64>) {
    spec.validate().expect("app specs are statically valid");
    let mt = spec.sharing == MemSharing::Shared;
    let mut b = Builder::new();
    let top = b.label();
    let done = b.label();
    let rejoin = b.label();
    let detour = b.label();
    let body_func = b.label();

    // ---- Prologue: region bases and loop bounds.
    if mt {
        b.tid(R_TID);
    }
    b.li(R_SHARED, layout::SHARED_BASE);
    emit_base(&mut b, mt, R_PRIV, layout::PRIV_BASE, layout::PRIV_STRIDE);
    emit_base(&mut b, mt, R_FLAG, layout::FLAG_BASE, layout::FLAG_STRIDE);
    emit_base(&mut b, mt, R_OUT, layout::OUT_BASE, layout::OUT_STRIDE);

    if spec.barrier_every != 0 {
        // Own rendezvous slot: BARRIER_BASE + tid.
        b.li(R_BARRIER, layout::BARRIER_BASE);
        b.alu_add(R_BARRIER, R_BARRIER, R_TID);
    }

    if spec.index_partitioned && mt {
        // i in [tid*chunk, (tid+1)*chunk) — the SPLASH-2 block split.
        let chunk = (iters / threads.max(1) as u64).max(1) as i64;
        b.li(Reg::R12, chunk);
        b.alu_mul(R_I, R_TID, Reg::R12);
        b.alu_add(R_BOUND, R_I, Reg::R12);
    } else {
        b.addi(R_I, Reg::R0, 0);
        b.li(R_BOUND, iters as i64);
    }
    b.addi(R_K, Reg::R0, 0);
    b.addi(R_STEP, Reg::R0, 0);
    b.addi(R_CACC, Reg::R0, 0);
    b.addi(R_KACC, Reg::R0, 0);
    b.addi(R_PACC, Reg::R0, 0);

    // ---- Main loop. The unrolled compute groups run inside a counted
    // inner loop so one outer lap is thousands of instructions (see
    // `KernelSpec::inner_iters`).
    b.bind(top);
    b.bge(R_I, R_BOUND, done);
    b.addi(R_INNER, Reg::R0, spec.inner_iters);
    let inner_top = b.label();
    let inner_rejoin = b.label();
    b.bind(inner_top);
    if spec.calls {
        b.jal(Reg::Ra, body_func);
    } else {
        for u in 0..spec.unroll {
            emit_body(&mut b, spec, u);
        }
    }
    b.addi(R_STEP, R_STEP, 1);

    // Divergence check, once per inner iteration: per-thread flags
    // trigger a detour. The flag index wraps at the working set like the
    // data regions (divergence conditions in real code are computed from
    // resident data).
    if spec.divergence_inv > 0 {
        b.andi(
            Reg::R25,
            R_STEP,
            (layout::FLAG_SIZE - 1).min(spec.ws_words - 1),
        );
        b.alu_add(Reg::R25, R_FLAG, Reg::R25);
        b.ld(Reg::R26, Reg::R25, 0);
        b.bne(Reg::R26, Reg::R0, detour);
    }
    b.bind(inner_rejoin);
    let inner_rejoin_pc = b.here();
    b.addi(R_INNER, R_INNER, -1);
    b.bne(R_INNER, Reg::R0, inner_top);

    b.bind(rejoin);
    let rejoin_pc = b.here();
    b.addi(R_I, R_I, 1);
    b.addi(R_K, R_K, 1);
    // Barrier rendezvous every `barrier_every` laps: publish our lap
    // count, then spin until every thread has published at least it —
    // the classic sense-free counter barrier (each thread writes only
    // its own slot, so the kernel stays race-free).
    if spec.barrier_every != 0 {
        let skip = b.label();
        b.andi(Reg::R12, R_K, spec.barrier_every as i64 - 1);
        b.bne(Reg::R12, Reg::R0, skip);
        b.st(R_K, R_BARRIER, 0);
        for u in 0..threads {
            let spin = b.label();
            b.bind(spin);
            b.li(Reg::R12, layout::BARRIER_BASE + u as i64);
            b.ld(Reg::R25, Reg::R12, 0);
            b.blt(Reg::R25, R_K, spin);
        }
        b.bind(skip);
    }
    b.jmp(top);

    // Detour: a private loop whose trip count is the flag value; rejoins
    // the inner loop.
    if spec.divergence_inv > 0 {
        b.bind(detour);
        let dloop = b.label();
        b.bind(dloop);
        b.alu(AluOp::Xor, R_PACC, R_PACC, Reg::R26);
        b.alu(AluOp::Add, R_PACC, R_PACC, R_I);
        b.addi(Reg::R26, Reg::R26, -1);
        b.bne(Reg::R26, Reg::R0, dloop);
        b.jmp(inner_rejoin);
    } else {
        // Keep the label bound even when unreachable.
        b.bind(detour);
    }

    b.bind(done);
    b.halt();

    // Out-of-line body for call-heavy kernels.
    if spec.calls {
        b.bind(body_func);
        for u in 0..spec.unroll {
            emit_body(&mut b, spec, u);
        }
        b.jr(Reg::Ra);
    } else {
        b.bind(body_func);
    }

    let program = b.build().expect("generator binds every label exactly once");
    (program, vec![inner_rejoin_pc, rejoin_pc])
}

fn emit_base(b: &mut Builder, mt: bool, reg: Reg, base: i64, stride: i64) {
    b.li(reg, base);
    if mt {
        // reg += tid * stride.
        b.li(Reg::R11, stride);
        b.alu_mul(Reg::R11, R_TID, Reg::R11);
        b.alu_add(reg, reg, Reg::R11);
    }
}

/// One compute group of an iteration (`group` distinguishes unrolled
/// replicas so their memory offsets differ): common loads/ops, private
/// loads/ops, stores.
fn emit_body(b: &mut Builder, spec: &KernelSpec, group: usize) {
    let g = group as i64;
    let nc = COMMON_SCRATCH.len();
    let np = PRIVATE_SCRATCH.len();
    // Common-region loads. Partitioned kernels index the shared region by
    // the thread-varying `i` (each thread reads its own block → operands
    // differ); replicated kernels index by the common `k`.
    let common_idx = if spec.index_partitioned { R_I } else { R_K };
    for l in 0..spec.common_loads {
        let dst = COMMON_SCRATCH[(l + group) % nc];
        b.andi(Reg::R12, common_idx, spec.ws_words - 1);
        b.alu_add(Reg::R12, R_SHARED, Reg::R12);
        b.ld(dst, Reg::R12, (l as i64 * 7 + g * 13) % 64);
    }

    // Common ALU work. For replicated kernels this mixes the loaded
    // values, the common counter and the common accumulator — all
    // thread-identical. For partitioned kernels the loaded data is
    // thread-private (each thread owns a block), so the genuinely common
    // work is the index/bounds arithmetic: a chain over the common
    // counters only.
    for n in 0..spec.common_alu {
        let w = n + group;
        if spec.index_partitioned {
            // A k-pure chain would serialize; interleave independent ops.
            match n % 3 {
                0 => b.alu(AluOp::Add, R_KACC, R_KACC, R_K),
                1 => b.alu(AluOp::Xor, COMMON_SCRATCH[w % nc], R_K, R_STEP),
                _ => b.alu(AluOp::Mul, COMMON_SCRATCH[(w + 1) % nc], R_K, R_STEP),
            };
            continue;
        }
        let src = COMMON_SCRATCH[w % nc];
        match n % 6 {
            0 => b.alu(AluOp::Add, R_CACC, R_CACC, src),
            1 => b.alu(AluOp::Xor, COMMON_SCRATCH[(w + 1) % nc], src, R_K),
            2 => b.alu(AluOp::Mul, COMMON_SCRATCH[(w + 2) % nc], src, R_K),
            3 => b.alu(AluOp::Shr, COMMON_SCRATCH[(w + 3) % nc], src, R_K),
            4 => b.alu(AluOp::Add, COMMON_SCRATCH[(w + 2) % nc], src, R_K),
            _ => b.alu(AluOp::Xor, COMMON_SCRATCH[(w + 3) % nc], src, R_K),
        };
    }
    for n in 0..spec.common_fpu {
        let w = n + group;
        let op = match n % 3 {
            0 => FpuOp::Fadd,
            1 => FpuOp::Fmul,
            _ => FpuOp::Fsqrt,
        };
        if spec.index_partitioned {
            b.fpu(op, R_KACC, R_KACC, R_K);
            continue;
        }
        let src = COMMON_SCRATCH[w % nc];
        if n % 3 == 0 {
            b.fpu(op, R_CACC, R_CACC, src);
        } else {
            b.fpu(op, COMMON_SCRATCH[(w + 2) % nc], src, R_K);
        }
    }

    // Private-region loads (thread-varying bases for MT, per-process
    // contents for ME). Pointer-chasing kernels index every other load by
    // a previously loaded value, so the address computation diverges with
    // the data and the loads partially chain — *partially*, because a
    // fully chained stream would make the kernel memory-latency-bound and
    // indifferent to any amount of instruction merging.
    for l in 0..spec.private_loads {
        let dst = PRIVATE_SCRATCH[(l + group) % np];
        let index_src = if spec.pointer_chase && l % 2 == 0 {
            PRIVATE_SCRATCH[(l + group + 2) % np]
        } else {
            R_I
        };
        b.andi(Reg::R20, index_src, spec.ws_words - 1);
        b.alu_add(Reg::R20, R_PRIV, Reg::R20);
        b.ld(dst, Reg::R20, (l as i64 * 5 + g * 11) % 64);
    }

    // Private ALU work. Accumulation into R_PACC is deliberately sparse
    // (every sixth op): denser accumulator chains make the kernel
    // dependency-bound, and then even perfect instruction merging cannot
    // speed it up (a serial chain's latency is the same executed once or
    // twice) — real applications carry far more ILP than that.
    for n in 0..spec.private_alu {
        let w = n + group;
        let src = PRIVATE_SCRATCH[w % np];
        match n % 6 {
            0 => b.alu(AluOp::Add, R_PACC, R_PACC, src),
            // R_PACC appears as a *source* below (fan-out, not a chain):
            // it keeps the private data's thread-divergence flowing into
            // the scratch pool without serializing the ops.
            1 => b.alu(AluOp::Xor, PRIVATE_SCRATCH[(w + 1) % np], src, R_PACC),
            2 => b.alu(AluOp::Mul, PRIVATE_SCRATCH[(w + 2) % np], src, R_PACC),
            3 => b.alu(AluOp::Add, PRIVATE_SCRATCH[(w + 3) % np], src, R_I),
            4 => b.alu(AluOp::Shr, PRIVATE_SCRATCH[(w + 1) % np], src, R_PACC),
            _ => b.alu(AluOp::Xor, PRIVATE_SCRATCH[(w + 2) % np], src, R_PACC),
        };
    }

    // Stores to the private output region.
    for s in 0..spec.stores {
        b.andi(Reg::R27, R_I, spec.ws_words - 1);
        b.alu_add(Reg::R27, R_OUT, Reg::R27);
        b.st(R_PACC, Reg::R27, (s as i64 + g * 3) % 32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DivergenceProfile;
    use mmt_isa::interp::{Machine, Memory};

    fn spec(sharing: MemSharing, partitioned: bool, calls: bool) -> KernelSpec {
        KernelSpec {
            sharing,
            iters: 64,
            common_alu: 4,
            common_fpu: 1,
            common_loads: 2,
            private_alu: 2,
            private_loads: 1,
            stores: 1,
            divergence_inv: 8,
            divergence: DivergenceProfile::Short,
            index_partitioned: partitioned,
            calls,
            me_ident_pct: if sharing == MemSharing::PerThread {
                50
            } else {
                0
            },
            pointer_chase: false,
            ws_words: 256,
            inner_iters: 2,
            unroll: 2,
            barrier_every: 0,
            seed: 7,
        }
    }

    fn run_thread(prog: &Program, tid: usize, mem: &mut Memory) -> Machine {
        let mut m = Machine::new(tid);
        m.run(prog, mem, 2_000_000).expect("no faults");
        assert!(m.halted(), "kernel must terminate");
        m
    }

    #[test]
    fn mt_kernel_runs_to_completion_all_threads() {
        let s = spec(MemSharing::Shared, false, false);
        let prog = generate(&s, 2, 64);
        let mut mem = crate::data::build_memories(&s, 2, false).remove(0);
        for t in 0..2 {
            let m = run_thread(&prog, t, &mut mem);
            assert!(m.retired() > 64 * 10, "does real work");
        }
    }

    #[test]
    fn partitioned_threads_cover_disjoint_ranges() {
        let s = spec(MemSharing::Shared, true, false);
        let prog = generate(&s, 2, 64);
        let mut mem = crate::data::build_memories(&s, 2, false).remove(0);
        let m0 = run_thread(&prog, 0, &mut mem);
        let m1 = run_thread(&prog, 1, &mut mem);
        // Each thread ended at its own bound: 32 and 64.
        assert_eq!(m0.reg(R_I), 32);
        assert_eq!(m1.reg(R_I), 64);
        assert_eq!(m1.reg(R_I) - 32, 32);
        // Both executed the same number of common iterations.
        assert_eq!(m0.reg(R_K), m1.reg(R_K));
    }

    #[test]
    fn me_kernel_is_tid_free() {
        // Multi-execution processes must not consult the hardware thread
        // id — their differences come from inputs alone.
        let s = spec(MemSharing::PerThread, false, false);
        let prog = generate(&s, 2, 64);
        assert!(
            !prog
                .as_slice()
                .iter()
                .any(|i| matches!(i, mmt_isa::Inst::Tid { .. })),
            "ME kernels derive divergence from data, not tid"
        );
    }

    #[test]
    fn call_heavy_kernel_balances_calls_and_returns() {
        let s = spec(MemSharing::Shared, false, true);
        let prog = generate(&s, 2, 64);
        let jals = prog
            .as_slice()
            .iter()
            .filter(|i| matches!(i, mmt_isa::Inst::Jal { .. }))
            .count();
        let jrs = prog
            .as_slice()
            .iter()
            .filter(|i| matches!(i, mmt_isa::Inst::Jr { .. }))
            .count();
        assert_eq!(jals, 1);
        assert_eq!(jrs, 1);
        let mut mem = crate::data::build_memories(&s, 2, false).remove(0);
        run_thread(&prog, 0, &mut mem);
    }

    #[test]
    fn identical_inputs_produce_identical_common_accumulators() {
        let s = spec(MemSharing::Shared, false, false);
        let prog = generate(&s, 2, 64);
        let mut mem = crate::data::build_memories(&s, 2, false).remove(0);
        let m0 = run_thread(&prog, 0, &mut mem);
        let m1 = run_thread(&prog, 1, &mut mem);
        assert_eq!(
            m0.reg(R_CACC),
            m1.reg(R_CACC),
            "common work must be execute-identical"
        );
        // Private accumulators differ (different flag/private regions).
        assert_ne!(m0.reg(R_PACC), m1.reg(R_PACC));
    }

    #[test]
    fn divergence_free_spec_emits_no_flag_check() {
        let mut s = spec(MemSharing::Shared, false, false);
        s.divergence_inv = 0;
        let with_div = generate(&spec(MemSharing::Shared, false, false), 2, 64).len();
        let without = generate(&s, 2, 64).len();
        assert!(without < with_div, "flag check and detour are omitted");
        let mut mem = crate::data::build_memories(&s, 2, false).remove(0);
        run_thread(&prog_of(&s), 0, &mut mem);
    }

    fn prog_of(s: &KernelSpec) -> Program {
        generate(s, 2, 64)
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use crate::spec::DivergenceProfile;
    use mmt_isa::interp::{Machine, Memory};

    fn barrier_spec() -> KernelSpec {
        KernelSpec {
            sharing: MemSharing::Shared,
            iters: 16,
            common_alu: 2,
            common_fpu: 0,
            common_loads: 1,
            private_alu: 2,
            private_loads: 1,
            stores: 1,
            divergence_inv: 8,
            divergence: DivergenceProfile::Short,
            index_partitioned: false,
            calls: false,
            me_ident_pct: 0,
            pointer_chase: false,
            ws_words: 256,
            inner_iters: 2,
            unroll: 2,
            barrier_every: 4,
            seed: 11,
        }
    }

    /// Interleaved execution (round-robin stepping) — barrier kernels
    /// cannot run one thread to completion alone.
    fn run_interleaved(prog: &Program, threads: usize, mem: &mut Memory) -> Vec<Machine> {
        let mut machines: Vec<Machine> = (0..threads).map(Machine::new).collect();
        for _ in 0..10_000_000u64 {
            let mut any = false;
            for m in &mut machines {
                if !m.halted() {
                    m.step(prog, mem).expect("no faults");
                    any = true;
                }
            }
            if !any {
                return machines;
            }
        }
        panic!("barrier kernel did not terminate (deadlocked spin?)");
    }

    #[test]
    fn barrier_kernel_terminates_with_all_threads() {
        let spec = barrier_spec();
        let prog = generate(&spec, 2, spec.iters);
        let mut mem = crate::data::build_memories(&spec, 2, false).remove(0);
        let machines = run_interleaved(&prog, 2, &mut mem);
        for m in &machines {
            assert!(m.halted());
        }
        // Both threads published their final lap counts.
        for t in 0..2u64 {
            let slot = mem.load(layout::BARRIER_BASE as u64 + t).unwrap();
            assert!(slot > 0, "thread {t} never reached a barrier");
        }
    }

    #[test]
    fn barrier_spin_blocks_a_lone_thread() {
        // The documented limitation: sequential tracing is impossible —
        // a single thread spins at the first barrier forever.
        let spec = barrier_spec();
        let prog = generate(&spec, 2, spec.iters);
        let mut mem = crate::data::build_memories(&spec, 2, false).remove(0);
        let mut m = Machine::new(0);
        let steps = m.run(&prog, &mut mem, 50_000).unwrap();
        assert_eq!(steps, 50_000, "lone thread must be stuck spinning");
        assert!(!m.halted());
    }

    #[test]
    fn barrier_free_spec_emits_no_barrier_code() {
        let mut spec = barrier_spec();
        spec.barrier_every = 0;
        let with = generate(&barrier_spec(), 2, 16).len();
        let without = generate(&spec, 2, 16).len();
        assert!(without < with);
    }
}
