//! # mmt-workloads — the paper's application suite, reconstructed
//!
//! The MMT paper (Table 1) evaluates seven *multi-execution* programs
//! (SPEC2000's ammp, twolf, vpr, equake, mcf, vortex plus libsvm) and
//! nine *multi-threaded* programs (SPLASH-2's lu, fft, ocean, water-ns,
//! water-sp plus PARSEC's swaptions, fluidanimate, blackscholes,
//! canneal). We cannot run those binaries on a from-scratch ISA, and the
//! paper's results do not depend on *what* the programs compute — only on
//! each program's **redundancy profile**: how much of its instruction
//! stream is fetch-identical across threads, how much is
//! execute-identical, how often control flow diverges, and how long
//! divergent paths run (paper Figures 1 and 2).
//!
//! This crate therefore provides one synthetic kernel per paper
//! application, written in the `mmt-isa` assembler DSL, whose *measured*
//! redundancy profile is calibrated to that application's published
//! profile. Each kernel has a distinct structure (loop nests, indirect
//! loads, call/return, detours) parameterized by [`spec::KernelSpec`]:
//!
//! * **shared work** — operations on loop counters and data that is
//!   identical across threads (shared memory for MT, replicated inputs
//!   for ME) → *execute-identical* when merged;
//! * **private work** — operations on thread-partitioned indices or
//!   per-process data → *fetch-identical* only;
//! * **divergence** — per-thread flag arrays trigger detours of
//!   controlled length and frequency → DETECT/CATCHUP behaviour and the
//!   Figure 2 length distributions.
//!
//! ## Example
//!
//! ```
//! use mmt_workloads::{all_apps, app_by_name};
//! let apps = all_apps();
//! assert_eq!(apps.len(), 16);
//! let equake = app_by_name("equake").expect("in the suite");
//! let w = equake.instance(2, 4); // 2 threads, 1/4 scale
//! assert_eq!(w.memories.len(), 2); // multi-execution: one per process
//! assert!(!w.program.is_empty());
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod data;
pub mod generator;
pub mod spec;

pub use apps::{all_apps, app_by_name, perfsmoke_app, App, Suite, PERFSMOKE_SEED};
pub use spec::{DivergenceProfile, KernelSpec};

use mmt_isa::interp::Memory;
use mmt_isa::{MemSharing, Program};

/// A fully-instantiated workload: the shared program plus initialized
/// memories, ready to hand to the simulator (or interpreter/profiler).
#[derive(Debug, Clone)]
pub struct WorkloadInstance {
    /// Human-readable name (the paper application it stands in for).
    pub name: String,
    /// The program text (identical for every thread — the SPMD premise).
    pub program: Program,
    /// Memory model.
    pub sharing: MemSharing,
    /// One memory ([`MemSharing::Shared`]) or one per thread.
    pub memories: Vec<Memory>,
    /// Number of threads this instance was built for.
    pub threads: usize,
    /// Static remerge-point PCs (software hints for Thread Fusion-style
    /// synchronization; the control-flow joins after divergent
    /// branches).
    pub remerge_hints: Vec<u64>,
}
