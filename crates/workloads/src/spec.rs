//! Kernel parameterization.
//!
//! Every synthetic application is an instance of one loop-nest skeleton
//! (see [`crate::generator`]) tuned by a [`KernelSpec`]. The knobs map
//! directly onto the redundancy characteristics the paper measures:
//!
//! * `common_*` work reads values identical across threads → candidate
//!   *execute-identical* instructions;
//! * `private_*` work reads thread-varying values → *fetch-identical*
//!   only;
//! * the divergence profile controls how often threads leave the common
//!   path and for how long (paper Figure 2);
//! * `index_partitioned` makes the main induction variable differ per
//!   thread (the SPLASH-2 "each thread owns a block" style), which
//!   demotes most loop work from execute- to fetch-identical;
//! * `me_ident_frac` sets, for multi-execution inputs, the fraction of
//!   private-region words that happen to be identical across processes
//!   (the property \[34\] observed and the LVIP exploits).

use mmt_isa::MemSharing;

/// How long divergent detours run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceProfile {
    /// Detours of 1–4 inner iterations: path-length differences land
    /// almost entirely in Figure 2's "≤16 taken branches" bucket.
    Short,
    /// Detours of 1–16 inner iterations.
    Medium,
    /// Mostly short detours with a heavy tail (up to ~128 inner
    /// iterations) — the equake/vortex shape in Figure 2.
    LongTail,
}

impl DivergenceProfile {
    /// Map a uniform random byte to a detour length (inner iterations).
    pub fn detour_len(self, r: u8) -> u64 {
        match self {
            DivergenceProfile::Short => 1 + (r % 4) as u64,
            DivergenceProfile::Medium => 1 + (r % 16) as u64,
            DivergenceProfile::LongTail => {
                if r >= 240 {
                    24 + 2 * (r - 240) as u64 // 24..54, ~6% of detours
                } else {
                    1 + (r % 8) as u64
                }
            }
        }
    }
}

/// Full parameterization of one synthetic application kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Memory model (multi-threaded vs multi-execution).
    pub sharing: MemSharing,
    /// Outer-loop iterations at scale 1 (divided by the `scale` argument
    /// of [`crate::App::instance`]).
    pub iters: u64,
    /// ALU operations per iteration on common (thread-identical) values.
    pub common_alu: usize,
    /// FPU operations per iteration on common values.
    pub common_fpu: usize,
    /// Loads per iteration from the common-indexed shared region.
    pub common_loads: usize,
    /// ALU operations per iteration on private (thread-varying) values.
    pub private_alu: usize,
    /// Loads per iteration from the private region.
    pub private_loads: usize,
    /// Stores per iteration to the private output region.
    pub stores: usize,
    /// A detour triggers roughly once every `divergence_inv` iterations
    /// (0 disables divergence entirely).
    pub divergence_inv: u64,
    /// Detour length distribution.
    pub divergence: DivergenceProfile,
    /// Multi-threaded only: the main induction variable is partitioned
    /// across threads (distinct index ranges) instead of replicated.
    pub index_partitioned: bool,
    /// Wrap the loop body in a `jal`/`jr` function call (exercises the
    /// RAS; the vortex/mcf "call-heavy" shape).
    pub calls: bool,
    /// Multi-execution only: fraction (0–100) of private-region words
    /// identical across processes.
    pub me_ident_pct: u8,
    /// Private loads chase pointers: each load's address is computed
    /// from the previously loaded value (the mcf/vpr/canneal access
    /// pattern). Address computation then inherits the data's
    /// thread-divergence, and loads form serial dependence chains.
    pub pointer_chase: bool,
    /// Working-set words per data region (power of two, at most the
    /// region size). Indices wrap at this footprint, giving the temporal
    /// reuse real loop nests have; small values are cache-resident after
    /// warmup, large values keep the kernel memory-bound (the
    /// mcf/canneal character).
    pub ws_words: i64,
    /// Inner-loop trip count: the unrolled compute groups execute inside
    /// a counted inner loop, making one outer iteration ("lap") several
    /// thousand instructions — the scale of real applications' outer
    /// loops. Long laps matter: a lap must dwarf any single stall
    /// (~200-cycle DRAM miss) or threads drift a whole lap apart and
    /// remerge out of phase.
    pub inner_iters: i64,
    /// Body replications per outer iteration. Real applications have
    /// loop bodies of hundreds of instructions; replicating the compute
    /// group keeps the synthetic kernels in that regime (which matters
    /// for the register-merging hardware: a register written every ~30
    /// instructions almost always has a younger in-flight writer at
    /// commit, defeating the Section 4.2.7 validity check).
    pub unroll: usize,
    /// Multi-threaded only: threads rendezvous at a store/spin barrier
    /// every `barrier_every` outer laps (0 disables; must be a power of
    /// two). Real SPLASH-2/PARSEC codes are barrier-phased, and barriers
    /// are the natural re-alignment points the paper's Section 4.4
    /// scheduling discussion leans on. Barrier kernels cannot be traced
    /// sequentially (the spin never exits with one thread), so the
    /// profiler only sees barrier-free instances.
    pub barrier_every: u64,
    /// Base RNG seed for input generation (per-app, fixed for
    /// reproducibility).
    pub seed: u64,
}

impl KernelSpec {
    /// Instructions in one iteration of the common path (approximate;
    /// used by tests to sanity-check generated programs, not by the
    /// generator itself).
    pub fn approx_body_len(&self) -> usize {
        // Loop control + address arithmetic overheads are roughly:
        // 2 per load/store (mask+add), 3 loop control, 3 flag check.
        let mem = self.common_loads + self.private_loads + self.stores;
        (self.common_alu + self.common_fpu + self.private_alu + mem * 3) * self.unroll
            + 6
            + if self.calls { 2 } else { 0 }
    }

    /// Validate knob consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.iters == 0 {
            return Err("iters must be non-zero".into());
        }
        if self.unroll == 0 {
            return Err("unroll must be non-zero".into());
        }
        if self.inner_iters <= 0 {
            return Err("inner_iters must be positive".into());
        }
        if self.ws_words <= 0
            || self.ws_words.count_ones() != 1
            || self.ws_words > layout::PRIV_SIZE
        {
            return Err("ws_words must be a power of two within the region size".into());
        }
        if self.me_ident_pct > 100 {
            return Err("me_ident_pct is a percentage".into());
        }
        if self.sharing == MemSharing::Shared && self.me_ident_pct != 0 {
            return Err("me_ident_pct only applies to multi-execution kernels".into());
        }
        if self.sharing == MemSharing::PerThread && self.index_partitioned {
            return Err("multi-execution instances always run the full index range".into());
        }
        if self.barrier_every != 0 {
            if self.sharing != MemSharing::Shared {
                return Err("barriers need shared memory (multi-threaded kernels)".into());
            }
            if !self.barrier_every.is_power_of_two() {
                return Err("barrier_every must be a power of two".into());
            }
        }
        Ok(())
    }
}

/// Memory-layout constants shared by the generator and input builder.
/// Word addresses; regions are sized as powers of two so the kernels can
/// mask indices cheaply.
pub mod layout {
    /// Base of the common (shared/replicated-identical) data region.
    pub const SHARED_BASE: i64 = 4096;
    /// Words in the common region (power of two).
    pub const SHARED_SIZE: i64 = 4096;
    /// Base of the per-thread private data region. Multi-threaded
    /// kernels offset this by `tid * PRIV_STRIDE`; multi-execution
    /// kernels use it directly in each process's own memory.
    pub const PRIV_BASE: i64 = 65536;
    /// Words in the private region (power of two).
    pub const PRIV_SIZE: i64 = 2048;
    /// Separation between threads' private regions (multi-threaded).
    /// Deliberately *not* a multiple of the L1 way size (16 KiB = 2048
    /// words): power-of-two strides would put every thread's element `i`
    /// in the same cache set, and merged (lockstep) fetch would then
    /// thrash the 4-way L1 — an artifact of the synthetic layout, not of
    /// MMT.
    pub const PRIV_STRIDE: i64 = 4224;
    /// Base of the divergence-flag region (same per-thread offsetting).
    pub const FLAG_BASE: i64 = 131072;
    /// Words of flags (power of two) — one flag per iteration, wrapped.
    pub const FLAG_SIZE: i64 = 4096;
    /// Separation between threads' flag regions (multi-threaded); see
    /// [`PRIV_STRIDE`] for why this is not a power of two.
    pub const FLAG_STRIDE: i64 = 8576;
    /// Base of the per-thread output region (same offsetting scheme).
    pub const OUT_BASE: i64 = 262144;
    /// Separation between threads' output regions; see [`PRIV_STRIDE`].
    pub const OUT_STRIDE: i64 = 4480;
    /// Base of the barrier rendezvous slots (one word per thread).
    pub const BARRIER_BASE: i64 = 524288;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> KernelSpec {
        KernelSpec {
            sharing: MemSharing::Shared,
            iters: 100,
            common_alu: 4,
            common_fpu: 1,
            common_loads: 2,
            private_alu: 2,
            private_loads: 1,
            stores: 1,
            divergence_inv: 16,
            divergence: DivergenceProfile::Short,
            index_partitioned: false,
            calls: false,
            me_ident_pct: 0,
            pointer_chase: false,
            ws_words: 256,
            inner_iters: 2,
            unroll: 1,
            barrier_every: 0,
            seed: 1,
        }
    }

    #[test]
    fn validation_catches_misuse() {
        assert!(base_spec().validate().is_ok());
        let mut s = base_spec();
        s.iters = 0;
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.me_ident_pct = 50; // on a shared-memory kernel
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.sharing = MemSharing::PerThread;
        s.index_partitioned = true;
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.sharing = MemSharing::PerThread;
        s.me_ident_pct = 101;
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.unroll = 0;
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.barrier_every = 3; // not a power of two
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.sharing = MemSharing::PerThread;
        s.barrier_every = 4; // barriers need shared memory
        assert!(s.validate().is_err());
        let mut s = base_spec();
        s.barrier_every = 4;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn detour_lengths_respect_profiles() {
        for r in 0..=255u8 {
            let s = DivergenceProfile::Short.detour_len(r);
            assert!((1..=4).contains(&s));
            let m = DivergenceProfile::Medium.detour_len(r);
            assert!((1..=16).contains(&m));
            let l = DivergenceProfile::LongTail.detour_len(r);
            assert!((1..=54).contains(&l));
        }
        // The long tail actually exists (>16 taken branches, the Figure 2
        // outlier bucket).
        assert!(DivergenceProfile::LongTail.detour_len(255) > 30);
    }

    #[test]
    fn layout_regions_do_not_overlap() {
        use layout::*;
        // 4 threads maximum.
        let shared = SHARED_BASE..SHARED_BASE + SHARED_SIZE;
        let privr = PRIV_BASE..PRIV_BASE + 3 * PRIV_STRIDE + PRIV_SIZE;
        let flags = FLAG_BASE..FLAG_BASE + 3 * FLAG_STRIDE + FLAG_SIZE;
        let out = OUT_BASE..OUT_BASE + 3 * OUT_STRIDE + PRIV_SIZE;
        assert!(shared.end <= privr.start);
        assert!(privr.end <= flags.start);
        assert!(flags.end <= out.start);
        // Power-of-two sizes for masking.
        assert!(SHARED_SIZE.count_ones() == 1);
        assert!(PRIV_SIZE.count_ones() == 1);
        assert!(FLAG_SIZE.count_ones() == 1);
    }
}
