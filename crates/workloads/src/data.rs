//! Input-data generation.
//!
//! Builds the initial [`Memory`] images for a kernel: the common region
//! (identical for every thread/process), the private regions
//! (thread-strided for multi-threaded kernels; per-process contents with
//! a controlled identical fraction for multi-execution kernels), the
//! divergence-flag regions, and zeroed output regions.
//!
//! All randomness is `rand::rngs::SmallRng` seeded from the spec — the
//! same spec always produces byte-identical inputs.

use crate::spec::{layout, KernelSpec};
use mmt_isa::interp::Memory;
use mmt_isa::MemSharing;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build the initial memories for `threads` threads of `spec`.
///
/// Returns one memory for [`MemSharing::Shared`] kernels and `threads`
/// memories for [`MemSharing::PerThread`] kernels. With `identical`
/// set, every process receives byte-identical inputs — the paper's
/// *Limit* configuration.
pub fn build_memories(spec: &KernelSpec, threads: usize, identical: bool) -> Vec<Memory> {
    match spec.sharing {
        MemSharing::Shared => vec![build_shared_memory(spec, threads)],
        MemSharing::PerThread => (0..threads)
            .map(|p| build_process_memory(spec, if identical { 0 } else { p }, p))
            .collect(),
    }
}

/// One memory for a multi-threaded workload: a common region plus
/// per-thread private/flag regions at thread-strided offsets.
fn build_shared_memory(spec: &KernelSpec, threads: usize) -> Memory {
    let mut m = Memory::new(0);
    fill_common(&mut m, spec);
    for t in 0..threads {
        let priv_base = (layout::PRIV_BASE + t as i64 * layout::PRIV_STRIDE) as u64;
        let flag_base = (layout::FLAG_BASE + t as i64 * layout::FLAG_STRIDE) as u64;
        fill_private(&mut m, spec, priv_base, spec.seed ^ (0x9e37 + t as u64));
        fill_flags(
            &mut m,
            spec,
            flag_base,
            spec.seed ^ (0xc2b2 + 31 * t as u64),
        );
    }
    m
}

/// One process's memory for a multi-execution workload. `persona` picks
/// the input variation (processes with the same persona have identical
/// inputs); `id` is the memory's identity.
fn build_process_memory(spec: &KernelSpec, persona: usize, id: usize) -> Memory {
    let mut m = Memory::new(id);
    fill_common(&mut m, spec);
    fill_private_me(&mut m, spec, persona);
    fill_flags(
        &mut m,
        spec,
        layout::FLAG_BASE as u64,
        spec.seed ^ (0xc2b2 + 31 * persona as u64),
    );
    m
}

fn fill_common(m: &mut Memory, spec: &KernelSpec) {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    for w in 0..(layout::SHARED_SIZE + 64) as u64 {
        let v: u32 = rng.gen();
        m.store(layout::SHARED_BASE as u64 + w, v as u64)
            .expect("layout fits default memory");
    }
}

fn fill_private(m: &mut Memory, spec: &KernelSpec, base: u64, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for w in 0..(layout::PRIV_SIZE + 64) as u64 {
        let v: u32 = rng.gen();
        m.store(base + w, v as u64).expect("layout fits");
    }
    let _ = spec;
}

/// Multi-execution private data: each word is identical across processes
/// with probability `me_ident_pct` (drawn from a persona-independent
/// stream), otherwise process-specific.
fn fill_private_me(m: &mut Memory, spec: &KernelSpec, persona: usize) {
    let mut common = SmallRng::seed_from_u64(spec.seed ^ 0x5151);
    let mut own = SmallRng::seed_from_u64(spec.seed ^ (0xabcd + persona as u64 * 7919));
    for w in 0..(layout::PRIV_SIZE + 64) as u64 {
        let shared_word: u32 = common.gen();
        let own_word: u32 = own.gen();
        let ident: u8 = common.gen_range(0..100);
        let v = if ident < spec.me_ident_pct {
            shared_word
        } else {
            own_word
        };
        m.store(layout::PRIV_BASE as u64 + w, v as u64)
            .expect("layout fits");
    }
}

fn fill_flags(m: &mut Memory, spec: &KernelSpec, base: u64, seed: u64) {
    if spec.divergence_inv == 0 {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for w in 0..layout::FLAG_SIZE as u64 {
        let fires = rng.gen_range(0..spec.divergence_inv) == 0;
        let v = if fires {
            spec.divergence.detour_len(rng.gen())
        } else {
            0
        };
        if v != 0 {
            m.store(base + w, v).expect("layout fits");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DivergenceProfile;

    fn me_spec(ident: u8, div_inv: u64) -> KernelSpec {
        KernelSpec {
            sharing: MemSharing::PerThread,
            iters: 64,
            common_alu: 2,
            common_fpu: 0,
            common_loads: 1,
            private_alu: 2,
            private_loads: 1,
            stores: 1,
            divergence_inv: div_inv,
            divergence: DivergenceProfile::Short,
            index_partitioned: false,
            calls: false,
            me_ident_pct: ident,
            pointer_chase: false,
            ws_words: 256,
            inner_iters: 2,
            unroll: 2,
            barrier_every: 0,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = me_spec(50, 8);
        let a = build_memories(&s, 2, false);
        let b = build_memories(&s, 2, false);
        for (x, y) in a.iter().zip(&b) {
            for w in 0..layout::PRIV_SIZE as u64 {
                let addr = layout::PRIV_BASE as u64 + w;
                assert_eq!(x.load(addr).unwrap(), y.load(addr).unwrap());
            }
        }
    }

    #[test]
    fn common_region_identical_across_processes() {
        let s = me_spec(0, 8);
        let mems = build_memories(&s, 2, false);
        for w in 0..(layout::SHARED_SIZE + 64) as u64 {
            let addr = layout::SHARED_BASE as u64 + w;
            assert_eq!(
                mems[0].load(addr).unwrap(),
                mems[1].load(addr).unwrap(),
                "common inputs are replicated"
            );
        }
    }

    #[test]
    fn me_ident_fraction_controls_similarity() {
        for (pct, lo, hi) in [(0u8, 0.0, 0.05), (50, 0.40, 0.60), (100, 1.0, 1.0)] {
            let s = me_spec(pct, 8);
            let mems = build_memories(&s, 2, false);
            let mut same = 0;
            for w in 0..layout::PRIV_SIZE as u64 {
                let addr = layout::PRIV_BASE as u64 + w;
                if mems[0].load(addr).unwrap() == mems[1].load(addr).unwrap() {
                    same += 1;
                }
            }
            let frac = same as f64 / layout::PRIV_SIZE as f64;
            assert!(
                (lo..=hi).contains(&frac),
                "pct {pct}: measured identical fraction {frac}"
            );
        }
    }

    #[test]
    fn limit_instances_are_byte_identical() {
        let s = me_spec(30, 8);
        let mems = build_memories(&s, 2, true);
        for w in 0..layout::PRIV_SIZE as u64 {
            let addr = layout::PRIV_BASE as u64 + w;
            assert_eq!(mems[0].load(addr).unwrap(), mems[1].load(addr).unwrap());
        }
        for w in 0..layout::FLAG_SIZE as u64 {
            let addr = layout::FLAG_BASE as u64 + w;
            assert_eq!(mems[0].load(addr).unwrap(), mems[1].load(addr).unwrap());
        }
    }

    #[test]
    fn flag_density_tracks_divergence_inv() {
        let s = me_spec(0, 16);
        let mems = build_memories(&s, 1, false);
        let mut set = 0;
        for w in 0..layout::FLAG_SIZE as u64 {
            if mems[0].load(layout::FLAG_BASE as u64 + w).unwrap() != 0 {
                set += 1;
            }
        }
        let rate = set as f64 / layout::FLAG_SIZE as f64;
        assert!((0.03..0.10).contains(&rate), "expected ~1/16, got {rate}");
    }

    #[test]
    fn zero_divergence_means_zero_flags() {
        let s = me_spec(0, 0);
        let mems = build_memories(&s, 1, false);
        for w in 0..layout::FLAG_SIZE as u64 {
            assert_eq!(mems[0].load(layout::FLAG_BASE as u64 + w).unwrap(), 0);
        }
    }

    #[test]
    fn mt_threads_get_distinct_private_data() {
        let s = KernelSpec {
            sharing: MemSharing::Shared,
            me_ident_pct: 0,
            ..me_spec(0, 8)
        };
        let mem = &build_memories(&s, 2, false)[0];
        let mut same = 0;
        for w in 0..layout::PRIV_SIZE as u64 {
            let a = mem.load(layout::PRIV_BASE as u64 + w).unwrap();
            let b = mem
                .load((layout::PRIV_BASE + layout::PRIV_STRIDE) as u64 + w)
                .unwrap();
            if a == b {
                same += 1;
            }
        }
        assert!(same < 10, "thread-private regions must differ");
    }
}
