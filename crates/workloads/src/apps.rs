//! The sixteen applications of the paper's Table 1, as calibrated
//! synthetic kernels.
//!
//! Each entry documents the paper application it stands in for and the
//! redundancy profile it is calibrated toward (read off the paper's
//! Figure 1/Figure 2/Figure 5). The knob values were tuned against this
//! repository's own profiler (`mmt-profile`, which reproduces Figure 1's
//! methodology) — see EXPERIMENTS.md for measured-vs-paper numbers.

use crate::generator::generate_with_hints;
use crate::spec::{DivergenceProfile, KernelSpec};
use crate::{data, WorkloadInstance};
use mmt_isa::MemSharing;

/// Benchmark suite of origin (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPLASH-2 (multi-threaded).
    Splash2,
    /// PARSEC (multi-threaded, sim-small inputs).
    Parsec,
    /// SPEC2000 (multi-execution with varied inputs).
    Spec2000,
    /// libsvm (multi-execution).
    Svm,
}

impl Suite {
    /// The suite's display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Splash2 => "SPLASH-2",
            Suite::Parsec => "PARSEC",
            Suite::Spec2000 => "SPEC2000",
            Suite::Svm => "SVM",
        }
    }
}

/// One application: a name, its suite, and the kernel spec that
/// reproduces its redundancy profile.
#[derive(Debug, Clone)]
pub struct App {
    /// Application name (matching the paper's figures).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// The calibrated kernel parameters.
    pub spec: KernelSpec,
}

impl App {
    /// Workload kind (multi-threaded vs multi-execution).
    pub fn sharing(&self) -> MemSharing {
        self.spec.sharing
    }

    /// Build a runnable instance for `threads` hardware threads.
    ///
    /// `scale` divides the iteration count: `1` is the full (bench-sized)
    /// run; tests use `8`–`32` for speed. For multi-threaded partitioned
    /// kernels the problem is split across threads (same problem, less
    /// work each); for multi-execution kernels every process runs the
    /// full problem (more threads, more work) — the paper's Section 5
    /// scaling rules.
    pub fn instance(&self, threads: usize, scale: u64) -> WorkloadInstance {
        self.instance_inner(threads, scale, false)
    }

    /// Like [`App::instance`] with a different input set: `input_id`
    /// reseeds the generated data, standing in for the paper's "varying
    /// data inputs" per multi-execution batch (Table 1). The program text
    /// is unchanged; only memory contents move.
    pub fn instance_with_input(
        &self,
        threads: usize,
        scale: u64,
        input_id: u64,
    ) -> WorkloadInstance {
        let mut alt = self.clone();
        alt.spec.seed = self
            .spec
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(input_id);
        alt.instance_inner(threads, scale, false)
    }

    /// The paper's *Limit* configuration: identical instances of the
    /// program with identical inputs, so every instruction is
    /// execute-identical in principle (memory operations may still be
    /// performed separately).
    pub fn limit_instance(&self, threads: usize, scale: u64) -> WorkloadInstance {
        let mut spec = self.spec.clone();
        // Limit replicates one process image per thread, regardless of
        // the app's native kind.
        spec.sharing = MemSharing::PerThread;
        spec.index_partitioned = false;
        if spec.me_ident_pct == 0 {
            spec.me_ident_pct = 100;
        }
        let iters = (spec.iters / scale).max(8);
        let (program, remerge_hints) = generate_with_hints(&spec, threads, iters);
        let memories = data::build_memories(&spec, threads, true);
        WorkloadInstance {
            name: format!("{}-limit", self.name),
            program,
            sharing: MemSharing::PerThread,
            memories,
            threads,
            remerge_hints,
        }
    }

    fn instance_inner(&self, threads: usize, scale: u64, identical: bool) -> WorkloadInstance {
        let iters = (self.spec.iters / scale).max(8);
        let (program, remerge_hints) = generate_with_hints(&self.spec, threads, iters);
        let memories = data::build_memories(&self.spec, threads, identical);
        WorkloadInstance {
            name: self.name.to_string(),
            program,
            sharing: self.spec.sharing,
            memories,
            threads,
            remerge_hints,
        }
    }
}

fn me(seed: u64) -> KernelSpec {
    KernelSpec {
        sharing: MemSharing::PerThread,
        iters: 120,
        common_alu: 4,
        common_fpu: 0,
        common_loads: 2,
        private_alu: 4,
        private_loads: 1,
        stores: 1,
        divergence_inv: 16,
        divergence: DivergenceProfile::Short,
        index_partitioned: false,
        calls: false,
        me_ident_pct: 50,
        pointer_chase: false,
        ws_words: 256,
        inner_iters: 8,
        unroll: 20,
        barrier_every: 0,
        seed,
    }
}

fn mt(seed: u64) -> KernelSpec {
    KernelSpec {
        sharing: MemSharing::Shared,
        me_ident_pct: 0,
        ..me(seed)
    }
}

/// All sixteen applications, in the paper's Figure 1 order
/// (multi-execution first, then SPLASH-2, then PARSEC).
pub fn all_apps() -> Vec<App> {
    vec![
        // ---- Multi-execution (SPEC2000 + libsvm) --------------------
        // ammp: molecular dynamics; the paper's highest execute-identical
        // fraction (~70%) — large replicated force tables, rare
        // divergence.
        App {
            name: "ammp",
            suite: Suite::Spec2000,
            spec: KernelSpec {
                common_alu: 6,
                common_fpu: 3,
                common_loads: 2,
                private_alu: 7,
                private_loads: 2,
                divergence_inv: 60,
                me_ident_pct: 70,
                ..me(101)
            },
        },
        // equake: sparse earthquake simulation; high execute-identical
        // (~65%) but long-tailed divergence lengths (Figure 2 calls out
        // equake as one of two apps with >16-branch divergences).
        App {
            name: "equake",
            suite: Suite::Spec2000,
            spec: KernelSpec {
                common_alu: 4,
                common_fpu: 3,
                common_loads: 3,
                private_alu: 8,
                private_loads: 1,
                divergence_inv: 24,
                divergence: DivergenceProfile::LongTail,
                me_ident_pct: 70,
                iters: 70,
                unroll: 21,
                inner_iters: 6,
                ..me(102)
            },
        },
        // mcf: network simplex; integer/pointer heavy with calls,
        // moderate execute-identical (~45%) and a large working set.
        App {
            name: "mcf",
            suite: Suite::Spec2000,
            spec: KernelSpec {
                common_alu: 5,
                common_loads: 1,
                private_alu: 8,
                private_loads: 3,
                divergence_inv: 24,
                divergence: DivergenceProfile::Medium,
                me_ident_pct: 30,
                calls: true,
                ws_words: 2048,
                pointer_chase: true,
                iters: 76,
                unroll: 21,
                inner_iters: 6,
                ..me(103)
            },
        },
        // twolf: placement annealing; branchy, input-sensitive, limited
        // execute-identical (~30%) and poor MERGE-mode residency.
        App {
            name: "twolf",
            suite: Suite::Spec2000,
            spec: KernelSpec {
                common_alu: 1,
                common_loads: 1,
                private_alu: 14,
                private_loads: 2,
                divergence_inv: 9,
                divergence: DivergenceProfile::Medium,
                pointer_chase: true,
                me_ident_pct: 40,
                iters: 68,
                unroll: 22,
                inner_iters: 6,
                ..me(104)
            },
        },
        // vpr: place & route; the most divergent multi-execution app
        // (~15% execute-identical).
        App {
            name: "vpr",
            suite: Suite::Spec2000,
            spec: KernelSpec {
                common_alu: 1,
                common_loads: 1,
                private_alu: 11,
                private_loads: 2,
                divergence_inv: 6,
                divergence: DivergenceProfile::Medium,
                pointer_chase: true,
                me_ident_pct: 25,
                iters: 66,
                unroll: 25,
                inner_iters: 6,
                ..me(105)
            },
        },
        // vortex: object database; call-heavy with long-tailed divergence
        // (the other Figure 2 outlier), ~30% execute-identical.
        App {
            name: "vortex",
            suite: Suite::Spec2000,
            spec: KernelSpec {
                common_alu: 2,
                common_loads: 2,
                private_alu: 12,
                private_loads: 1,
                stores: 2,
                divergence_inv: 12,
                divergence: DivergenceProfile::LongTail,
                me_ident_pct: 30,
                calls: true,
                pointer_chase: true,
                iters: 65,
                unroll: 25,
                inner_iters: 6,
                ..me(106)
            },
        },
        // libsvm: SVM training with varied inputs; ~35% execute-identical
        // with frequent divergence.
        App {
            name: "libsvm",
            suite: Suite::Svm,
            spec: KernelSpec {
                common_alu: 2,
                common_fpu: 1,
                common_loads: 2,
                private_alu: 14,
                private_loads: 1,
                divergence_inv: 12,
                divergence: DivergenceProfile::Medium,
                me_ident_pct: 25,
                iters: 77,
                unroll: 21,
                inner_iters: 6,
                ..me(107)
            },
        },
        // ---- SPLASH-2 (multi-threaded) ------------------------------
        // lu: blocked dense LU; threads own disjoint blocks, so almost
        // everything is fetch-identical only (~12% execute-identical:
        // just the shared index/bounds arithmetic).
        App {
            name: "lu",
            suite: Suite::Splash2,
            spec: KernelSpec {
                common_alu: 2,
                common_fpu: 0,
                common_loads: 2,
                private_alu: 4,
                private_loads: 1,
                divergence_inv: 120,
                index_partitioned: true,
                iters: 87,
                unroll: 33,
                ..mt(108)
            },
        },
        // fft: butterfly stages over partitioned indices (~12%
        // execute-identical, very regular control flow).
        App {
            name: "fft",
            suite: Suite::Splash2,
            spec: KernelSpec {
                common_alu: 2,
                common_fpu: 0,
                common_loads: 2,
                private_alu: 5,
                private_loads: 1,
                divergence_inv: 150,
                index_partitioned: true,
                iters: 90,
                unroll: 32,
                ..mt(109)
            },
        },
        // ocean: stencil over a partitioned grid (~15%), large working
        // set.
        App {
            name: "ocean",
            suite: Suite::Splash2,
            spec: KernelSpec {
                common_alu: 2,
                common_fpu: 0,
                common_loads: 2,
                private_alu: 4,
                private_loads: 2,
                divergence_inv: 60,
                index_partitioned: true,
                ws_words: 1024,
                iters: 99,
                unroll: 29,
                ..mt(110)
            },
        },
        // water-nsquared: all threads sweep the full molecule array
        // (replicated read loops) — high execute-identical (~40%) and a
        // strong register-merging response in the paper.
        App {
            name: "water-ns",
            suite: Suite::Splash2,
            spec: KernelSpec {
                common_alu: 4,
                common_fpu: 2,
                common_loads: 2,
                private_alu: 11,
                private_loads: 3,
                divergence_inv: 36,
                iters: 85,
                unroll: 17,
                ..mt(111)
            },
        },
        // water-spatial: like water-ns with more frequent divergence
        // (~35%; the app whose performance dips at very large FHBs in
        // Figure 7(a)).
        App {
            name: "water-sp",
            suite: Suite::Splash2,
            spec: KernelSpec {
                common_alu: 3,
                common_fpu: 2,
                common_loads: 2,
                private_alu: 13,
                private_loads: 2,
                divergence_inv: 27,
                divergence: DivergenceProfile::Medium,
                iters: 80,
                unroll: 18,
                inner_iters: 6,
                ..mt(112)
            },
        },
        // ---- PARSEC (multi-threaded) --------------------------------
        // swaptions: Monte-Carlo over a shared rate lattice; high
        // execute-identical (~45%), little divergence.
        App {
            name: "swaptions",
            suite: Suite::Parsec,
            spec: KernelSpec {
                common_alu: 5,
                common_fpu: 2,
                common_loads: 2,
                private_alu: 9,
                private_loads: 2,
                divergence_inv: 36,
                iters: 76,
                unroll: 19,
                ..mt(113)
            },
        },
        // fluidanimate: particle interactions with moderate divergence
        // (~40%).
        App {
            name: "fluidanimate",
            suite: Suite::Parsec,
            spec: KernelSpec {
                common_alu: 4,
                common_fpu: 1,
                common_loads: 2,
                private_alu: 10,
                private_loads: 1,
                stores: 2,
                divergence_inv: 27,
                divergence: DivergenceProfile::Medium,
                iters: 72,
                unroll: 20,
                inner_iters: 6,
                ..mt(114)
            },
        },
        // blackscholes: embarrassingly parallel over partitioned options;
        // almost no divergence but mostly private data (~20%
        // execute-identical, ~93% fetch-identical).
        App {
            name: "blackscholes",
            suite: Suite::Parsec,
            spec: KernelSpec {
                common_alu: 3,
                common_fpu: 2,
                common_loads: 2,
                private_alu: 3,
                private_loads: 1,
                divergence_inv: 160,
                index_partitioned: true,
                iters: 80,
                unroll: 30,
                ..mt(115)
            },
        },
        // canneal: randomized element swaps; branchy with moderate
        // sharing (~20%) and a large working set.
        App {
            name: "canneal",
            suite: Suite::Parsec,
            spec: KernelSpec {
                common_alu: 1,
                common_loads: 2,
                private_alu: 13,
                private_loads: 3,
                divergence_inv: 15,
                divergence: DivergenceProfile::Medium,
                ws_words: 2048,
                pointer_chase: true,
                iters: 95,
                unroll: 19,
                inner_iters: 6,
                ..mt(116)
            },
        },
    ]
}

/// Look up an application by its paper name.
pub fn app_by_name(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// Fixed seed for the `perfsmoke` microbenchmark workload — pinned so
/// the benchmark's dynamic instruction stream is bit-identical across
/// machines and PRs (the throughput numbers in `results/BENCH_*.json`
/// are only comparable when the simulated work is).
pub const PERFSMOKE_SEED: u64 = 0x00C0_FFEE;

/// The `perfsmoke` workload: a deliberately long-running multi-threaded
/// kernel (fixed [`PERFSMOKE_SEED`], moderate divergence) that keeps the
/// cycle loop busy long enough for wall-clock timing to be stable. Not
/// part of [`all_apps`] — it models no paper application and must not
/// appear in the figures.
pub fn perfsmoke_app() -> App {
    App {
        name: "perfsmoke",
        suite: Suite::Splash2,
        spec: KernelSpec {
            common_alu: 5,
            common_fpu: 1,
            common_loads: 2,
            private_alu: 6,
            private_loads: 2,
            divergence_inv: 20,
            divergence: DivergenceProfile::Medium,
            iters: 240,
            ..mt(PERFSMOKE_SEED)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_composition_matches_table1() {
        let apps = all_apps();
        assert_eq!(apps.len(), 16);
        let me_apps: Vec<_> = apps
            .iter()
            .filter(|a| a.sharing() == MemSharing::PerThread)
            .collect();
        assert_eq!(me_apps.len(), 7, "SPEC2000 x6 + libsvm");
        let splash: Vec<_> = apps.iter().filter(|a| a.suite == Suite::Splash2).collect();
        assert_eq!(splash.len(), 5);
        let parsec: Vec<_> = apps.iter().filter(|a| a.suite == Suite::Parsec).collect();
        assert_eq!(parsec.len(), 4);
        // Every spec is statically valid.
        for a in &apps {
            a.spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", a.name));
        }
        // Names are unique.
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("ammp").is_some());
        assert!(app_by_name("water-ns").is_some());
        assert!(app_by_name("doom").is_none());
        assert_eq!(app_by_name("fft").unwrap().suite.name(), "SPLASH-2");
    }

    #[test]
    fn instances_run_functionally() {
        use mmt_isa::interp::Machine;
        for app in all_apps() {
            let w = app.instance(2, 16);
            assert_eq!(w.threads, 2);
            let expected_mems = match w.sharing {
                MemSharing::Shared => 1,
                MemSharing::PerThread => 2,
            };
            assert_eq!(w.memories.len(), expected_mems, "{}", app.name);
            let mut mems = w.memories.clone();
            for t in 0..2 {
                let mem = match w.sharing {
                    MemSharing::Shared => &mut mems[0],
                    MemSharing::PerThread => &mut mems[t],
                };
                let mut m = Machine::new(t);
                m.run(&w.program, mem, 5_000_000)
                    .unwrap_or_else(|e| panic!("{} thread {t}: {e}", app.name));
                assert!(m.halted(), "{} thread {t} must halt", app.name);
                assert!(m.retired() > 100, "{} does real work", app.name);
            }
        }
    }

    #[test]
    fn limit_instances_are_identical_processes() {
        let app = app_by_name("water-ns").unwrap();
        let w = app.limit_instance(2, 16);
        assert_eq!(w.sharing, MemSharing::PerThread);
        assert_eq!(w.memories.len(), 2);
        // Same functional outcome in both processes.
        use mmt_isa::interp::Machine;
        let mut results = Vec::new();
        for t in 0..2 {
            let mut mem = w.memories[t].clone();
            let mut m = Machine::new(t);
            m.run(&w.program, &mut mem, 5_000_000).unwrap();
            results.push(*m.regs());
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn scale_reduces_work() {
        let app = app_by_name("ammp").unwrap();
        use mmt_isa::interp::Machine;
        let mut retired = Vec::new();
        for scale in [4u64, 16] {
            let w = app.instance(1, scale);
            let mut mem = w.memories[0].clone();
            let mut m = Machine::new(0);
            m.run(&w.program, &mut mem, 10_000_000).unwrap();
            retired.push(m.retired());
        }
        assert!(retired[0] > 2 * retired[1]);
    }
}

#[cfg(test)]
mod input_variation_tests {
    use super::*;

    #[test]
    fn input_variants_share_text_but_not_data() {
        let app = app_by_name("equake").unwrap();
        let a = app.instance_with_input(2, 16, 1);
        let b = app.instance_with_input(2, 16, 2);
        assert_eq!(a.program, b.program, "same binary, different inputs");
        // Private data differs between input sets.
        let addr = crate::spec::layout::PRIV_BASE as u64;
        let mut same = 0;
        for w in 0..256 {
            if a.memories[0].load(addr + w).unwrap() == b.memories[0].load(addr + w).unwrap() {
                same += 1;
            }
        }
        assert!(same < 200, "inputs should differ ({same}/256 identical)");
    }

    #[test]
    fn input_variants_are_deterministic() {
        let app = app_by_name("mcf").unwrap();
        let a = app.instance_with_input(2, 16, 7);
        let b = app.instance_with_input(2, 16, 7);
        for w in 0..64u64 {
            let addr = crate::spec::layout::PRIV_BASE as u64 + w;
            assert_eq!(
                a.memories[1].load(addr).unwrap(),
                b.memories[1].load(addr).unwrap()
            );
        }
    }
}
