//! Fuzz-style property tests for the hand-rolled JSON reader: whatever
//! the input — random byte soup, truncated documents, nesting floods,
//! single-byte corruptions of valid output — `parse` must return a typed
//! error or a value, never panic, and a reparsed success must agree with
//! the original document. Non-UTF-8 inputs can only arrive through
//! `parse_file` and must surface as its `Io` variant.

use mmt_obs::json::{self, FileParseError, Value, MAX_DEPTH};
use proptest::prelude::*;

/// Deterministically render a small valid JSON document from draws —
/// a poor man's grammar generator over every value shape the reader
/// supports (the vendored proptest has no recursive strategies).
fn render_doc(seed: &[u8]) -> String {
    fn value(seed: &[u8], i: &mut usize, depth: usize) -> String {
        let draw = seed.get(*i).copied().unwrap_or(0);
        *i += 1;
        match draw % if depth < 4 { 7 } else { 5 } {
            0 => "null".into(),
            1 => "true".into(),
            2 => format!("{}", draw as i32 - 128),
            3 => format!("{}.{}", draw, draw / 3),
            4 => format!("\"s{draw}\\n\""),
            5 => {
                let n = (draw % 3) as usize;
                let items: Vec<String> = (0..n).map(|_| value(seed, i, depth + 1)).collect();
                format!("[{}]", items.join(", "))
            }
            _ => {
                let n = (draw % 3) as usize;
                let items: Vec<String> = (0..n)
                    .map(|k| format!("\"k{k}\": {}", value(seed, i, depth + 1)))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
        }
    }
    let mut i = 0;
    // Wrap in an object so every strict prefix is structurally invalid.
    format!("{{\"doc\": {}}}", value(seed, &mut i, 0))
}

proptest! {
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        // Any outcome is fine; aborting the process is not.
        let _ = json::parse(&text);
    }

    #[test]
    fn generated_documents_parse_and_truncations_fail(seed in prop::collection::vec(any::<u8>(), 1..64), cut in 0usize..512) {
        let doc = render_doc(&seed);
        let v = json::parse(&doc).expect("generated document is valid");
        prop_assert!(v.get("doc").is_some());
        // Every strict prefix of the (container-rooted, no-trailing-ws)
        // document must be rejected, not misread.
        let cut = cut % doc.len();
        if cut < doc.len() {
            prop_assert!(json::parse(&doc[..cut]).is_err(), "prefix {cut} of {doc:?} accepted");
        }
    }

    #[test]
    fn corrupted_documents_never_panic(seed in prop::collection::vec(any::<u8>(), 1..64), at in 0usize..512, bit in 0u8..8) {
        let doc = render_doc(&seed);
        let mut bytes = doc.clone().into_bytes();
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        let text = String::from_utf8_lossy(&bytes);
        // Either a typed error or a successful parse of the mutated
        // text — re-rendered corruption may still be valid JSON (e.g. a
        // digit flip). Never a panic.
        let _ = json::parse(&text);
    }

    #[test]
    fn nesting_floods_are_typed_errors(extra in 1usize..64, open in prop::sample::select(vec!["[", "{\"k\":"])) {
        let flood = open.repeat(MAX_DEPTH + extra);
        let err = json::parse(&flood).expect_err("flood must be rejected");
        // The offset pins the rejection at the depth limit, proving the
        // parser stopped recursing rather than erroring incidentally.
        prop_assert!(err.offset <= flood.len());
    }
}

#[test]
fn non_utf8_files_surface_as_io_errors() {
    let dir = std::env::temp_dir().join("mmt-json-fuzz-non-utf8");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad-encoding.json");
    std::fs::write(&path, [b'{', 0xFF, 0xFE, b'}']).unwrap();
    match json::parse_file(&path) {
        Err(FileParseError::Io(_)) => {}
        other => panic!("expected Io error for non-UTF-8 input, got {other:?}"),
    }
}

#[test]
fn deep_but_legal_documents_still_parse() {
    let doc = format!(
        "{}1{}",
        "[".repeat(MAX_DEPTH - 1),
        "]".repeat(MAX_DEPTH - 1)
    );
    let mut v = &json::parse(&doc).unwrap();
    let mut depth = 0;
    while let Some(items) = v.as_array() {
        v = &items[0];
        depth += 1;
    }
    assert_eq!(depth, MAX_DEPTH - 1);
    assert_eq!(v, &Value::Number(1.0));
}
