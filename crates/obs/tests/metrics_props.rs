//! Property tests for the metrics registry (DESIGN.md §17): Prometheus
//! label-value escaping round-trips through a spec-faithful mini
//! parser, sanitized metric names are always legal and idempotent, and
//! a mid-run snapshot plus the end-of-run delta reproduces the end
//! totals exactly.

use mmt_obs::metrics::{escape_label_value, sanitize_name};
use mmt_obs::{MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

/// Decode draws into a hostile string: the alphabet is weighted toward
/// exactly the characters that break naive exposition writers — quotes,
/// backslashes, newlines — plus non-ASCII and control characters (the
/// vendored proptest has no regex string strategies).
fn hostile_string(draws: &[u8]) -> String {
    const ALPHABET: [char; 16] = [
        '"', '\\', '\n', 'n', 'a', 'Z', '0', ' ', '{', '}', ',', '=', 'é', '秒', '\t', '\u{1}',
    ];
    draws
        .iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()])
        .collect()
}

/// Undo [`escape_label_value`] per the exposition-format spec: `\\`,
/// `\"`, `\n` are the only defined escapes.
fn unescape_label_value(escaped: &str) -> Option<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else if c == '"' || c == '\n' {
            return None; // must have been escaped
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Pull the (still-escaped) value of `label` out of one exposition
/// line like `name{label="…",other="…"} 1`.
fn extract_label(line: &str, label: &str) -> Option<String> {
    let start = line.find(&format!("{label}=\""))? + label.len() + 2;
    let rest = &line[start..];
    // Scan to the closing quote, honouring backslash escapes.
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => return Some(rest[..end].to_string()),
            _ => end += 1,
        }
    }
    None
}

proptest! {
    #[test]
    fn label_values_round_trip_through_the_exposition_format(draws in prop::collection::vec(any::<u8>(), 0..40)) {
        let v = hostile_string(&draws);
        // Direct inverse of the escaper.
        let round_tripped = unescape_label_value(&escape_label_value(&v));
        prop_assert_eq!(round_tripped.as_deref(), Some(v.as_str()));

        // End to end: register a counter carrying the value as a label,
        // render the exposition text, re-extract and unescape. The
        // hostile cases are quotes, backslashes and newlines, which a
        // naive writer would let break the line structure.
        let mut reg = MetricsRegistry::new();
        let id = reg.counter("mmt_prop_total", "prop", &[("payload", v.as_str())]);
        reg.inc(id);
        let text = reg.snapshot().to_prometheus();
        let sample = text
            .lines()
            .find(|l| l.starts_with("mmt_prop_total{"))
            .expect("sample line rendered");
        prop_assert!(sample.ends_with(" 1"), "sample line mangled: {sample:?}");
        let escaped = extract_label(sample, "payload").expect("label present");
        prop_assert_eq!(unescape_label_value(&escaped), Some(v.clone()));
    }

    #[test]
    fn label_values_survive_json_export_too(draws in prop::collection::vec(any::<u8>(), 0..40)) {
        let v = hostile_string(&draws);
        let mut reg = MetricsRegistry::new();
        reg.counter("mmt_prop_total", "prop", &[("payload", v.as_str())]);
        let json = reg.snapshot().to_json();
        let parsed = mmt_obs::json::parse(&json).expect("snapshot JSON parses");
        let series = parsed.as_array().expect("array of series");
        let got = series[0]
            .get("labels")
            .and_then(|l| l.get("payload"))
            .and_then(|p| p.as_str());
        prop_assert_eq!(got, Some(v.as_str()));
    }

    #[test]
    fn sanitized_names_are_legal_and_idempotent(draws in prop::collection::vec(any::<u8>(), 0..24)) {
        let s = sanitize_name(&hostile_string(&draws));
        prop_assert!(!s.is_empty());
        let mut chars = s.chars();
        let first = chars.next().unwrap();
        prop_assert!(first.is_ascii_alphabetic() || first == '_' || first == ':', "{s:?}");
        prop_assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "{s:?}"
        );
        prop_assert_eq!(sanitize_name(&s), s);
    }

    #[test]
    fn mid_run_snapshot_plus_delta_equals_end_totals(
        ops in prop::collection::vec((0u8..3, 0u16..1000), 1..64),
        split in 0usize..64,
    ) {
        // Integer-valued observations keep every f64 sum exact, so the
        // property can demand bit equality rather than tolerance.
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("mmt_prop_total", "c", &[]);
        let g = reg.gauge("mmt_prop_gauge", "g", &[]);
        let h = reg.histogram("mmt_prop_seconds", "h", &[], &[10.0, 100.0, 500.0]);
        let split = split % ops.len();
        let apply = |reg: &mut MetricsRegistry, (kind, v): (u8, u16)| match kind {
            0 => reg.add(c, v as u64),
            1 => reg.set(g, v as f64),
            _ => reg.observe(h, v as f64),
        };

        for &op in &ops[..split] {
            apply(&mut reg, op);
        }
        let mid = reg.snapshot();
        for &op in &ops[split..] {
            apply(&mut reg, op);
        }
        let end = reg.snapshot();

        // Counters and histograms recombine additively; gauges take the
        // later value. Together: mid ⊕ (end − mid) == end, exactly.
        let delta = end.delta(&mid);
        let mut recombined: MetricsSnapshot = mid.clone();
        recombined.merge(&delta);
        prop_assert_eq!(recombined, end);
    }
}
