//! Event-stream replay: fold a trace back into the aggregate counters
//! the simulator reports, for differential consistency checking.
//!
//! [`CounterSet::apply`] is the single definition of "what an event
//! means" in counter terms; the live recorder uses it to maintain running
//! totals for windowed sampling, and the offline replay uses the same
//! code, so any divergence between a trace and the run's `SimStats` is a
//! genuine instrumentation bug, not a bookkeeping skew.

use crate::event::{FetchKind, TraceEvent, TraceRecord};
use mmt_isa::MAX_THREADS;

/// Aggregate counters reconstructible from the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Thread-instruction slots fetched while merged.
    pub fetch_merge: u64,
    /// Thread-instruction slots fetched in DETECT mode.
    pub fetch_detect: u64,
    /// Thread-instruction slots fetched in CATCHUP mode.
    pub fetch_catchup: u64,
    /// Instructions retired per thread (a merged commit counts once per
    /// owning thread).
    pub retired: [u64; MAX_THREADS],
    /// Commits (retirement slots — a merged commit counts once).
    pub commits: u64,
    /// Uops dispatched.
    pub uops_dispatched: u64,
    /// Dispatched uops covering two or more threads.
    pub merged_uops: u64,
    /// Successful remerges.
    pub remerges: u64,
    /// Divergences.
    pub divergences: u64,
}

impl CounterSet {
    /// Fold one event into the counters.
    #[inline]
    pub fn apply(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Fetch { mask, kind, .. } => {
                let slots = mask.count_ones() as u64;
                match kind {
                    FetchKind::Merged => self.fetch_merge += slots,
                    FetchKind::Detect => self.fetch_detect += slots,
                    FetchKind::Catchup => self.fetch_catchup += slots,
                }
            }
            TraceEvent::Dispatch { mask, merged, .. } => {
                self.uops_dispatched += 1;
                if merged {
                    self.merged_uops += 1;
                }
                debug_assert_eq!(merged, mask.count_ones() >= 2);
            }
            TraceEvent::Commit { mask, .. } => {
                self.commits += 1;
                for t in 0..MAX_THREADS {
                    if mask & (1 << t) != 0 {
                        self.retired[t] += 1;
                    }
                }
            }
            TraceEvent::Remerge { .. } => self.remerges += 1,
            TraceEvent::Divergence { .. } => self.divergences += 1,
            TraceEvent::Split { .. }
            | TraceEvent::Issue { .. }
            | TraceEvent::ModeTransition { .. }
            | TraceEvent::RstSet { .. }
            | TraceEvent::RstClear { .. }
            | TraceEvent::Lvip { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::Watchdog { .. } => {}
        }
    }

    /// Total thread-instruction slots fetched.
    pub fn fetch_total(&self) -> u64 {
        self.fetch_merge + self.fetch_detect + self.fetch_catchup
    }

    /// Total retired across threads.
    pub fn total_retired(&self) -> u64 {
        self.retired.iter().sum()
    }
}

/// Replay a full event stream into a [`CounterSet`].
pub fn replay(events: &[TraceRecord]) -> CounterSet {
    let mut c = CounterSet::default();
    for rec in events {
        c.apply(&rec.event);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent as E;

    fn rec(cycle: u64, event: E) -> TraceRecord {
        TraceRecord { cycle, event }
    }

    #[test]
    fn replay_folds_every_counter() {
        let events = vec![
            rec(
                0,
                E::Fetch {
                    pc: 0,
                    mask: 0b11,
                    kind: FetchKind::Merged,
                },
            ),
            rec(
                1,
                E::Fetch {
                    pc: 4,
                    mask: 0b01,
                    kind: FetchKind::Detect,
                },
            ),
            rec(
                1,
                E::Fetch {
                    pc: 9,
                    mask: 0b10,
                    kind: FetchKind::Catchup,
                },
            ),
            rec(
                2,
                E::Dispatch {
                    pc: 0,
                    mask: 0b11,
                    merged: true,
                },
            ),
            rec(
                2,
                E::Dispatch {
                    pc: 4,
                    mask: 0b01,
                    merged: false,
                },
            ),
            rec(3, E::Commit { pc: 0, mask: 0b11 }),
            rec(4, E::Commit { pc: 4, mask: 0b01 }),
            rec(
                5,
                E::Divergence {
                    pc: 7,
                    mask: 0b11,
                    parts: 2,
                },
            ),
            rec(9, E::Remerge { mask: 0b11 }),
        ];
        let c = replay(&events);
        assert_eq!(c.fetch_merge, 2);
        assert_eq!(c.fetch_detect, 1);
        assert_eq!(c.fetch_catchup, 1);
        assert_eq!(c.fetch_total(), 4);
        assert_eq!(c.uops_dispatched, 2);
        assert_eq!(c.merged_uops, 1);
        assert_eq!(c.commits, 2);
        assert_eq!(c.retired[0], 2);
        assert_eq!(c.retired[1], 1);
        assert_eq!(c.total_retired(), 3);
        assert_eq!(c.remerges, 1);
        assert_eq!(c.divergences, 1);
    }

    #[test]
    fn non_counter_events_are_inert() {
        let mut c = CounterSet::default();
        c.apply(&E::RstSet { reg: 3, a: 0, b: 1 });
        c.apply(&E::Issue {
            pc: 0,
            mask: 1,
            complete_at: 5,
        });
        assert_eq!(c, CounterSet::default());
    }
}
