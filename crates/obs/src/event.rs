//! The typed pipeline event taxonomy.
//!
//! Every event is a small `Copy` payload; the emitting pipeline stamps it
//! with the cycle into a [`TraceRecord`]. Masks are ITID thread masks
//! (bit `t` set means hardware thread `t` participates), PCs are static
//! program counters (instruction indices), and all enums are closed sets
//! so exporters can map them to stable names.

/// How a macro-op was fetched (collapses the per-thread
/// MERGE/DETECT/CATCHUP modes onto the fetch entity: merged entities are
/// in MERGE by definition, singleton entities carry their own mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// Fetched by a merged group (mask has two or more bits).
    Merged,
    /// Fetched by a lone thread hunting for a remerge point.
    Detect,
    /// Fetched by a lone thread catching up to an ahead thread.
    Catchup,
}

impl FetchKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FetchKind::Merged => "merged",
            FetchKind::Detect => "detect",
            FetchKind::Catchup => "catchup",
        }
    }
}

/// What the splitter decided for one fetched macro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// One merged uop covering the whole fetch group.
    Merged,
    /// At least one multi-thread part, but the group was split.
    Partial,
    /// Every part is a single thread.
    Private,
}

impl SplitKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SplitKind::Merged => "merged",
            SplitKind::Partial => "partial",
            SplitKind::Private => "private",
        }
    }
}

/// Why the splitter reached its decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCause {
    /// The macro-op was fetched by a lone thread — nothing to merge.
    FetchedAlone,
    /// The MMT level has no shared execution; merged fetches always
    /// split into per-thread copies (MMT-F).
    NoSharedExecute,
    /// The Register Sharing Table proved the sources identical.
    RstShared,
    /// As [`SplitCause::RstShared`], but at least one source's sharing
    /// bit was set by the commit-time register-merging hardware.
    RegMergeAssisted,
    /// The RST reported divergent sources; the group was split.
    RstSplit,
    /// An LVIP-speculated merged load failed verification and was split
    /// into per-thread copies (rollback charged).
    LvipRollback,
}

impl SplitCause {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SplitCause::FetchedAlone => "fetched-alone",
            SplitCause::NoSharedExecute => "no-shared-execute",
            SplitCause::RstShared => "rst-shared",
            SplitCause::RegMergeAssisted => "reg-merge-assisted",
            SplitCause::RstSplit => "rst-split",
            SplitCause::LvipRollback => "lvip-rollback",
        }
    }
}

/// A thread's fetch-synchronization mode, as carried by transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeTag {
    /// Fetching as part of a merged group.
    Merge,
    /// Fetching independently, hunting for a remerge point.
    Detect,
    /// Boosted fetch, catching up to an ahead thread.
    Catchup,
}

impl ModeTag {
    /// Stable display name (used by exporters as track/span names).
    pub fn name(self) -> &'static str {
        match self {
            ModeTag::Merge => "MERGE",
            ModeTag::Detect => "DETECT",
            ModeTag::Catchup => "CATCHUP",
        }
    }
}

/// What caused a [`TraceEvent::ModeTransition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeTrigger {
    /// A merged group's members resolved a control transfer differently.
    Divergence,
    /// A taken-branch target hit another thread's Fetch History Buffer.
    FhbHit,
    /// A catching-up thread reached the ahead thread's PC and merged.
    CatchupComplete,
    /// The FHB hit was a false positive (or the chase ran too long).
    CatchupAbort,
    /// Progress counters proved the catch-up ran the wrong way.
    WrongDirection,
    /// Two independent threads met at the same PC and merged.
    PcMatch,
    /// The thread fetched its `halt`.
    Halt,
    /// A merge-group partner halted, demoting the survivor.
    PartnerHalt,
}

impl ModeTrigger {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ModeTrigger::Divergence => "divergence",
            ModeTrigger::FhbHit => "fhb-hit",
            ModeTrigger::CatchupComplete => "catchup-complete",
            ModeTrigger::CatchupAbort => "catchup-abort",
            ModeTrigger::WrongDirection => "wrong-direction",
            ModeTrigger::PcMatch => "pc-match",
            ModeTrigger::Halt => "halt",
            ModeTrigger::PartnerHalt => "partner-halt",
        }
    }
}

/// Outcome of verifying an LVIP-speculated merged load at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LvipOutcome {
    /// All member threads loaded the same value; the merge stood.
    Match,
    /// Values differed: the load was split and a rollback charged.
    Rollback,
}

impl LvipOutcome {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            LvipOutcome::Match => "match",
            LvipOutcome::Rollback => "rollback",
        }
    }
}

/// Which state class a deliberately injected fault landed in
/// (fault-injection campaigns, DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultUnit {
    /// A Register Sharing Table entry.
    Rst,
    /// An LVIP slot.
    Lvip,
    /// An architectural register.
    ArchReg,
}

impl FaultUnit {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultUnit::Rst => "rst",
            FaultUnit::Lvip => "lvip",
            FaultUnit::ArchReg => "arch-reg",
        }
    }
}

/// Which forward-progress watchdog fired (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogKind {
    /// No thread retired for the configured livelock window.
    Livelock,
    /// The total touched-memory footprint exceeded its budget.
    MemoryBudget,
}

impl WatchdogKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            WatchdogKind::Livelock => "livelock",
            WatchdogKind::MemoryBudget => "memory-budget",
        }
    }
}

/// One typed pipeline event. See the module docs for conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A macro-op entered the pipeline (one event per fetch, however
    /// many threads the entity covers — the mask says which).
    Fetch {
        /// Static PC fetched.
        pc: u64,
        /// ITID mask of the fetch entity.
        mask: u8,
        /// Fetch-mode classification of the entity.
        kind: FetchKind,
    },
    /// The splitter's verdict for one macro-op at dispatch.
    Split {
        /// Static PC.
        pc: u64,
        /// ITID mask the macro-op was fetched with.
        mask: u8,
        /// Shape of the split.
        kind: SplitKind,
        /// Why.
        cause: SplitCause,
    },
    /// One uop entered rename/dispatch.
    Dispatch {
        /// Static PC.
        pc: u64,
        /// ITID mask of this uop (post-split).
        mask: u8,
        /// Whether the uop covers two or more threads.
        merged: bool,
    },
    /// One uop was selected by the issue stage (execution in this model
    /// begins at issue; `complete_at` is when its result is ready).
    Issue {
        /// Static PC.
        pc: u64,
        /// ITID mask.
        mask: u8,
        /// Cycle the uop's execution completes.
        complete_at: u64,
    },
    /// One uop retired (every owning thread committed it).
    Commit {
        /// Static PC.
        pc: u64,
        /// ITID mask.
        mask: u8,
    },
    /// A thread's fetch-synchronization mode changed.
    ModeTransition {
        /// Hardware thread.
        thread: u8,
        /// The mode entered.
        to: ModeTag,
        /// What drove the transition.
        trigger: ModeTrigger,
    },
    /// A merged group's members resolved a control transfer differently
    /// and the group split.
    Divergence {
        /// PC of the diverging control transfer.
        pc: u64,
        /// Mask of the group that split.
        mask: u8,
        /// Number of distinct next-PC parts.
        parts: u8,
    },
    /// Two fetch entities merged (PCs met).
    Remerge {
        /// Mask of the new merged group.
        mask: u8,
    },
    /// Commit-time register merging proved a register pair identical and
    /// set the sharing bit.
    RstSet {
        /// Architected register index.
        reg: u8,
        /// Committing thread.
        a: u8,
        /// The thread whose copy compared equal.
        b: u8,
    },
    /// A merged group split at dispatch, clearing the destination
    /// register's sharing across the group.
    RstClear {
        /// Architected register index.
        reg: u8,
        /// Mask of the group whose sharing was narrowed.
        mask: u8,
    },
    /// LVIP verification of a speculated merged load.
    Lvip {
        /// Static PC of the load.
        pc: u64,
        /// ITID mask the speculation covered.
        mask: u8,
        /// Whether the values matched.
        outcome: LvipOutcome,
    },
    /// A fault-injection campaign deliberately flipped state here, so
    /// timelines show exactly where an upset landed.
    FaultInjected {
        /// The state class hit.
        unit: FaultUnit,
        /// Class-specific location: RST/ArchReg register index (ArchReg
        /// packs `thread << 8 | reg`), LVIP slot.
        index: u32,
    },
    /// A forward-progress watchdog fired; the run terminates with the
    /// matching typed error immediately after this event.
    Watchdog {
        /// Which watchdog.
        kind: WatchdogKind,
    },
}

impl TraceEvent {
    /// Stable short name for exporters (JSONL `k` field, Chrome names).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::Split { .. } => "split",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::ModeTransition { .. } => "mode",
            TraceEvent::Divergence { .. } => "divergence",
            TraceEvent::Remerge { .. } => "remerge",
            TraceEvent::RstSet { .. } => "rst-set",
            TraceEvent::RstClear { .. } => "rst-clear",
            TraceEvent::Lvip { .. } => "lvip",
            TraceEvent::FaultInjected { .. } => "fault",
            TraceEvent::Watchdog { .. } => "watchdog",
        }
    }
}

/// One ring entry: an event stamped with its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(ModeTag::Merge.name(), "MERGE");
        assert_eq!(ModeTrigger::FhbHit.name(), "fhb-hit");
        let ev = TraceEvent::Fetch {
            pc: 0,
            mask: 0b11,
            kind: FetchKind::Merged,
        };
        assert_eq!(ev.name(), "fetch");
        assert_eq!(
            TraceEvent::ModeTransition {
                thread: 1,
                to: ModeTag::Detect,
                trigger: ModeTrigger::Divergence
            }
            .name(),
            "mode"
        );
    }
}
