//! A typed, allocation-free-in-steady-state metrics registry: the
//! aggregate-counter sibling of the event [ring](crate::ring), and the
//! scrape surface a long-running `mmtd` will mount.
//!
//! Design rules, in the same spirit as the tracing layer:
//!
//! * **Registration allocates, updates never do.** A metric is
//!   registered once up front and addressed by a typed id
//!   ([`CounterId`], [`GaugeId`], [`HistogramId`]) — an index into a
//!   preallocated slab. `inc`/`add`/`set`/`observe` are `#[inline]`
//!   integer ops on that slab, safe to call from a hot loop.
//! * **Zero cost when disabled.** Holders keep the registry behind an
//!   `Option<Box<…>>` (exactly the `ObsRecorder` discipline), so a
//!   disabled run never constructs one and pays a single branch.
//! * **Snapshotable mid-run.** [`MetricsRegistry::snapshot`] clones the
//!   current values; [`MetricsSnapshot::delta`] subtracts an earlier
//!   snapshot so `mid + (end - mid) == end` holds exactly, and
//!   [`MetricsSnapshot::merge`] folds snapshots from several runs.
//! * **Two export formats.** [`MetricsSnapshot::to_json`] for tooling,
//!   [`MetricsSnapshot::to_prometheus`] emitting the text exposition
//!   format (`# HELP`/`# TYPE`, escaped label values, cumulative
//!   histogram buckets with `+Inf`, `_sum`, `_count`).

use crate::json::{push_f64, ObjectWriter};
use std::fmt::Write as _;

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// What a metric is; decides both update semantics and exposition type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrary set-to-value `f64`.
    Gauge,
    /// Fixed upper-bound buckets plus running sum and count.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` name.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct MetricMeta {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: MetricKind,
    /// Index into the kind-specific value slab.
    slot: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct HistogramState {
    /// Upper bounds (inclusive, ascending); an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` entries.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// Sanitize `name` into the Prometheus metric-name alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; every out-of-alphabet byte becomes `_`
/// and an empty or digit-led name gains a leading `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Exponentially spaced histogram bounds: `count` values starting at
/// `start`, each `factor` times the last. The standard shape for
/// wall-clock latency histograms.
///
/// # Panics
///
/// Panics if `start` is not positive or `factor` is not greater than 1.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "start must be positive");
    assert!(factor > 1.0, "factor must be > 1");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

/// The registry: metadata plus preallocated value slabs. Construction
/// and registration allocate; steady-state updates are index arithmetic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metas: Vec<MetricMeta>,
    counters: Vec<u64>,
    gauges: Vec<f64>,
    histograms: Vec<HistogramState>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn push_meta(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        slot: usize,
    ) {
        self.metas.push(MetricMeta {
            name: sanitize_name(name),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (sanitize_name(k), v.to_string()))
                .collect(),
            kind,
            slot,
        });
    }

    /// Register a monotonic counter; `labels` are `(key, value)` pairs.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterId {
        let slot = self.counters.len();
        self.counters.push(0);
        self.push_meta(name, help, labels, MetricKind::Counter, slot);
        CounterId(slot)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeId {
        let slot = self.gauges.len();
        self.gauges.push(0.0);
        self.push_meta(name, help, labels, MetricKind::Gauge, slot);
        GaugeId(slot)
    }

    /// Register a histogram with the given ascending upper `bounds` (an
    /// implicit `+Inf` bucket is appended).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> HistogramId {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let slot = self.histograms.len();
        self.histograms.push(HistogramState {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        });
        self.push_meta(name, help, labels, MetricKind::Histogram, slot);
        HistogramId(slot)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = v;
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        let h = &mut self.histograms[id.0];
        // partition_point is a branch-free binary search over the fixed
        // bounds; no allocation in steady state.
        let bucket = h.bounds.partition_point(|&b| b < v);
        h.counts[bucket] += 1;
        h.sum += v;
        h.count += 1;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Clone the current values into an immutable snapshot. Tool path:
    /// allocates, never called from the cycle loop.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self
            .metas
            .iter()
            .map(|m| MetricSeries {
                name: m.name.clone(),
                help: m.help.clone(),
                labels: m.labels.clone(),
                value: match m.kind {
                    MetricKind::Counter => SeriesValue::Counter(self.counters[m.slot]),
                    MetricKind::Gauge => SeriesValue::Gauge(self.gauges[m.slot]),
                    MetricKind::Histogram => {
                        let h = &self.histograms[m.slot];
                        SeriesValue::Histogram {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            sum: h.sum,
                            count: h.count,
                        }
                    }
                },
            })
            .collect();
        MetricsSnapshot { series }
    }
}

/// One exported time series: a metric name, its labels, and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Sanitized metric name.
    pub name: String,
    /// Help text (`# HELP` line).
    pub help: String,
    /// Label `(key, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// The value, by kind.
    pub value: SeriesValue,
}

impl MetricSeries {
    fn key(&self) -> (&str, &[(String, String)]) {
        (&self.name, &self.labels)
    }
}

/// A snapshot value, by metric kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-set gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Ascending bucket upper bounds (exclusive of the implicit
        /// `+Inf`).
        bounds: Vec<f64>,
        /// Per-bucket (non-cumulative) observation counts,
        /// `bounds.len() + 1` entries.
        counts: Vec<u64>,
        /// Sum of all observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// An immutable copy of a registry's values, taken mid-run or at the
/// end; supports subtraction ([`delta`](MetricsSnapshot::delta)),
/// merging, and export as JSON or Prometheus text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The series, in registration order.
    pub series: Vec<MetricSeries>,
}

impl MetricsSnapshot {
    /// Subtract `earlier` from `self`, series by series (matched on
    /// name + labels): counters and histogram buckets subtract, gauges
    /// keep the later value. Series absent from `earlier` pass through
    /// unchanged, so `mid.merged_with(end.delta(&mid)) == end` for
    /// counter series.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let series = self
            .series
            .iter()
            .map(|s| {
                let prev = earlier.series.iter().find(|e| e.key() == s.key());
                let value = match (&s.value, prev.map(|p| &p.value)) {
                    (SeriesValue::Counter(now), Some(SeriesValue::Counter(before))) => {
                        SeriesValue::Counter(now.saturating_sub(*before))
                    }
                    (
                        SeriesValue::Histogram {
                            bounds,
                            counts,
                            sum,
                            count,
                        },
                        Some(SeriesValue::Histogram {
                            counts: before_counts,
                            sum: before_sum,
                            count: before_count,
                            ..
                        }),
                    ) => SeriesValue::Histogram {
                        bounds: bounds.clone(),
                        counts: counts
                            .iter()
                            .zip(before_counts)
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                        sum: sum - before_sum,
                        count: count.saturating_sub(*before_count),
                    },
                    (v, _) => v.clone(),
                };
                MetricSeries {
                    name: s.name.clone(),
                    help: s.help.clone(),
                    labels: s.labels.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { series }
    }

    /// Fold `other` into `self`: counters and histograms add (matched
    /// on name + labels), gauges take `other`'s value, unmatched series
    /// append.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for o in &other.series {
            match self.series.iter_mut().find(|s| s.key() == o.key()) {
                None => self.series.push(o.clone()),
                Some(s) => match (&mut s.value, &o.value) {
                    (SeriesValue::Counter(a), SeriesValue::Counter(b)) => *a += b,
                    (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => *a = *b,
                    (
                        SeriesValue::Histogram {
                            counts: ac,
                            sum: asum,
                            count: an,
                            ..
                        },
                        SeriesValue::Histogram {
                            counts: bc,
                            sum: bsum,
                            count: bn,
                            ..
                        },
                    ) => {
                        for (a, b) in ac.iter_mut().zip(bc) {
                            *a += b;
                        }
                        *asum += bsum;
                        *an += bn;
                    }
                    // Mismatched kinds under one name: keep ours.
                    _ => {}
                },
            }
        }
    }

    /// Export as a JSON array of series objects.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('[');
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut w = ObjectWriter::new(&mut out);
            w.str("name", &s.name).str("help", &s.help);
            let mut labels = String::new();
            {
                let mut lw = ObjectWriter::new(&mut labels);
                for (k, v) in &s.labels {
                    lw.str(k, v);
                }
                lw.finish();
            }
            w.raw("labels", &labels);
            match &s.value {
                SeriesValue::Counter(v) => {
                    w.str("kind", "counter").u64("value", *v);
                }
                SeriesValue::Gauge(v) => {
                    w.str("kind", "gauge").f64("value", *v);
                }
                SeriesValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    w.str("kind", "histogram");
                    let mut b = String::from("[");
                    for (i, v) in bounds.iter().enumerate() {
                        if i > 0 {
                            b.push(',');
                        }
                        push_f64(&mut b, *v);
                    }
                    b.push(']');
                    w.raw("bounds", &b);
                    let mut c = String::from("[");
                    for (i, v) in counts.iter().enumerate() {
                        if i > 0 {
                            c.push(',');
                        }
                        let _ = write!(c, "{v}");
                    }
                    c.push(']');
                    w.raw("counts", &c);
                    w.f64("sum", *sum).u64("count", *count);
                }
            }
            w.finish();
        }
        out.push(']');
        out
    }

    /// Export in the Prometheus text exposition format: one
    /// `# HELP`/`# TYPE` pair per metric name (first occurrence wins),
    /// label values escaped per the spec (`\\`, `\"`, `\n`), histograms
    /// as cumulative `_bucket{le=…}` series ending in `+Inf`, plus
    /// `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.series {
            if !seen.contains(&s.name.as_str()) {
                seen.push(&s.name);
                let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
                let _ = writeln!(
                    out,
                    "# TYPE {} {}",
                    s.name,
                    match s.value {
                        SeriesValue::Counter(_) => MetricKind::Counter,
                        SeriesValue::Gauge(_) => MetricKind::Gauge,
                        SeriesValue::Histogram { .. } => MetricKind::Histogram,
                    }
                    .prometheus_type()
                );
            }
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, label_set(&s.labels, None));
                }
                SeriesValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, label_set(&s.labels, None));
                }
                SeriesValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cumulative += c;
                        let le = match bounds.get(i) {
                            Some(b) => format!("{b}"),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            s.name,
                            label_set(&s.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(out, "{}_sum{} {sum}", s.name, label_set(&s.labels, None));
                    let _ = writeln!(
                        out,
                        "{}_count{} {count}",
                        s.name,
                        label_set(&s.labels, None)
                    );
                }
            }
        }
        out
    }
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the exposition format defines).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    // HELP text escapes only backslash and newline.
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_registry() -> (MetricsRegistry, CounterId, GaugeId, HistogramId) {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("mmt_cycles_total", "Simulated cycles", &[]);
        let g = reg.gauge(
            "mmt_rob_occupancy",
            "ROB occupancy",
            &[("tier", "detailed")],
        );
        let h = reg.histogram(
            "mmt_stage_seconds",
            "Stage wall-clock",
            &[("stage", "fetch")],
            &[0.001, 0.01, 0.1],
        );
        (reg, c, g, h)
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let (mut reg, c, g, h) = sample_registry();
        reg.inc(c);
        reg.add(c, 9);
        reg.set(g, 2.5);
        reg.observe(h, 0.0005);
        reg.observe(h, 0.05);
        reg.observe(h, 5.0);
        assert_eq!(reg.counter_value(c), 10);
        let snap = reg.snapshot();
        assert_eq!(snap.series[0].value, SeriesValue::Counter(10));
        assert_eq!(snap.series[1].value, SeriesValue::Gauge(2.5));
        match &snap.series[2].value {
            SeriesValue::Histogram {
                counts, sum, count, ..
            } => {
                assert_eq!(counts, &[1, 0, 1, 1]);
                assert!((sum - 5.0505).abs() < 1e-9);
                assert_eq!(*count, 3);
            }
            v => panic!("expected histogram, got {v:?}"),
        }
    }

    #[test]
    fn observation_on_boundary_goes_to_lower_bucket() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("h", "", &[], &[1.0, 2.0]);
        reg.observe(h, 1.0); // le="1" is inclusive
        reg.observe(h, 2.0);
        reg.observe(h, 2.0001);
        match &reg.snapshot().series[0].value {
            SeriesValue::Histogram { counts, .. } => assert_eq!(counts, &[1, 1, 1]),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn snapshot_delta_plus_mid_equals_end() {
        let (mut reg, c, g, h) = sample_registry();
        reg.add(c, 3);
        reg.observe(h, 0.002);
        reg.set(g, 1.0);
        let mid = reg.snapshot();
        reg.add(c, 4);
        reg.observe(h, 0.02);
        reg.set(g, 7.0);
        let end = reg.snapshot();
        let delta = end.delta(&mid);
        let mut rebuilt = mid.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, end, "mid + (end - mid) == end");
    }

    #[test]
    fn merge_appends_unknown_series() {
        let mut a = MetricsRegistry::new();
        a.counter("only_a", "", &[]);
        let mut b = MetricsRegistry::new();
        let bc = b.counter("only_b", "", &[]);
        b.add(bc, 5);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.series.len(), 2);
        assert_eq!(snap.series[1].value, SeriesValue::Counter(5));
    }

    #[test]
    fn json_export_parses() {
        let (mut reg, c, _, h) = sample_registry();
        reg.add(c, 2);
        reg.observe(h, 0.5);
        let parsed = json::parse(&reg.snapshot().to_json()).expect("metrics JSON parses");
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(arr[0].get("value").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            arr[2].get("counts").unwrap().as_array().unwrap().len(),
            4,
            "3 bounds + +Inf"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let (mut reg, c, g, h) = sample_registry();
        reg.add(c, 7);
        reg.set(g, 1.5);
        reg.observe(h, 0.005);
        reg.observe(h, 50.0);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# HELP mmt_cycles_total Simulated cycles\n"));
        assert!(text.contains("# TYPE mmt_cycles_total counter\n"));
        assert!(text.contains("mmt_cycles_total 7\n"));
        assert!(text.contains("mmt_rob_occupancy{tier=\"detailed\"} 1.5\n"));
        assert!(text.contains("mmt_stage_seconds_bucket{stage=\"fetch\",le=\"0.01\"} 1\n"));
        assert!(text.contains("mmt_stage_seconds_bucket{stage=\"fetch\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("mmt_stage_seconds_count{stage=\"fetch\"} 2\n"));
        // Buckets are cumulative and monotonic.
        let le01: u64 = text
            .lines()
            .find(|l| l.contains("le=\"0.1\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(le01, 1);
    }

    #[test]
    fn names_and_labels_are_sanitized_and_escaped() {
        assert_eq!(sanitize_name("mmt.stage-秒"), "mmt_stage__");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let mut reg = MetricsRegistry::new();
        reg.counter("bad name!", "", &[("bad key!", "quote\"val")]);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("bad_name_{bad_key_=\"quote\\\"val\"} 0"));
    }

    #[test]
    fn exponential_bounds_shape() {
        let b = exponential_bounds(1e-6, 10.0, 4);
        assert_eq!(b.len(), 4);
        assert!((b[3] - 1e-3).abs() < 1e-12);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
