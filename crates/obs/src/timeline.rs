//! Text timeline summary: top divergence sites ranked by cycles spent
//! diverged, and a power-of-two remerge-latency histogram.
//!
//! A "site" is the static PC of the control transfer that split a merged
//! group. Each member thread opens a diverged interval at the split and
//! closes it at the remerge that re-absorbs it (or at trace end, counted
//! as unresolved); the interval's cycles are charged to the opening site,
//! so hot sites are the ones keeping threads out of MERGE the longest.

use crate::event::{TraceEvent, TraceRecord};
use mmt_isa::MAX_THREADS;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate for one divergence PC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DivergenceSite {
    /// Static PC of the diverging control transfer.
    pub pc: u64,
    /// Times a group split here.
    pub divergences: u64,
    /// Total thread-cycles spent diverged, attributed to this site.
    pub cycles_diverged: u64,
}

/// Summary statistics computed from an event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Cycles the trace covers.
    pub cycles: u64,
    /// Events summarized.
    pub events: usize,
    /// Events lost to ring overflow before summarization.
    pub dropped: u64,
    /// Sites sorted by `cycles_diverged`, descending.
    pub sites: Vec<DivergenceSite>,
    /// Bucket `i` counts remerges whose per-thread latency fell in
    /// `[2^i, 2^(i+1))` cycles (bucket 0 covers latency 0 and 1).
    pub remerge_latency: Vec<u64>,
    /// Remerge events seen.
    pub remerges: u64,
    /// Thread intervals still diverged when the trace ended.
    pub unresolved: u64,
}

fn bucket(latency: u64) -> usize {
    if latency <= 1 {
        0
    } else {
        (63 - latency.leading_zeros()) as usize
    }
}

/// Summarize an event stream covering `cycles` cycles (`dropped` records
/// were lost upstream and are reported, not reconstructed).
pub fn summarize(events: &[TraceRecord], cycles: u64, dropped: u64) -> TimelineSummary {
    let mut sites: BTreeMap<u64, DivergenceSite> = BTreeMap::new();
    // Per-thread open diverged interval: (opening site PC, start cycle).
    let mut open: [Option<(u64, u64)>; MAX_THREADS] = [None; MAX_THREADS];
    let mut hist: Vec<u64> = Vec::new();
    let mut remerges = 0u64;

    let charge = |sites: &mut BTreeMap<u64, DivergenceSite>, pc: u64, dur: u64| {
        let site = sites.entry(pc).or_insert(DivergenceSite {
            pc,
            ..Default::default()
        });
        site.cycles_diverged += dur;
    };

    for rec in events {
        match rec.event {
            TraceEvent::Divergence { pc, mask, .. } => {
                let site = sites.entry(pc).or_insert(DivergenceSite {
                    pc,
                    ..Default::default()
                });
                site.divergences += 1;
                for (t, slot) in open.iter_mut().enumerate() {
                    if mask & (1 << t) == 0 {
                        continue;
                    }
                    // A thread re-diverging before remerging closes its
                    // prior interval into the prior site.
                    if let Some((prev_pc, start)) = slot.take() {
                        charge(&mut sites, prev_pc, rec.cycle.saturating_sub(start));
                    }
                    *slot = Some((pc, rec.cycle));
                }
            }
            TraceEvent::Remerge { mask } => {
                remerges += 1;
                for (t, slot) in open.iter_mut().enumerate() {
                    if mask & (1 << t) == 0 {
                        continue;
                    }
                    if let Some((pc, start)) = slot.take() {
                        let dur = rec.cycle.saturating_sub(start);
                        charge(&mut sites, pc, dur);
                        let b = bucket(dur);
                        if hist.len() <= b {
                            hist.resize(b + 1, 0);
                        }
                        hist[b] += 1;
                    }
                }
            }
            _ => {}
        }
    }

    let mut unresolved = 0u64;
    for slot in open.iter().flatten() {
        let (pc, start) = *slot;
        charge(&mut sites, pc, cycles.saturating_sub(start));
        unresolved += 1;
    }

    let mut sites: Vec<DivergenceSite> = sites.into_values().collect();
    sites.sort_by(|a, b| {
        b.cycles_diverged
            .cmp(&a.cycles_diverged)
            .then(a.pc.cmp(&b.pc))
    });

    TimelineSummary {
        cycles,
        events: events.len(),
        dropped,
        sites,
        remerge_latency: hist,
        remerges,
        unresolved,
    }
}

impl fmt::Display for TimelineSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timeline: {} cycles, {} events ({} dropped)",
            self.cycles, self.events, self.dropped
        )?;
        if self.sites.is_empty() {
            writeln!(f, "  no divergences recorded")?;
        } else {
            writeln!(f, "  top divergence sites (thread-cycles diverged):")?;
            for site in self.sites.iter().take(10) {
                writeln!(
                    f,
                    "    pc {:>6}  {:>6} splits  {:>10} cycles",
                    site.pc, site.divergences, site.cycles_diverged
                )?;
            }
        }
        writeln!(
            f,
            "  remerges: {} ({} unresolved at end)",
            self.remerges, self.unresolved
        )?;
        if !self.remerge_latency.is_empty() {
            writeln!(f, "  remerge latency (cycles per rejoining thread):")?;
            for (i, count) in self.remerge_latency.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                let lo = if i == 0 { 0u128 } else { 1u128 << i };
                let hi = 1u128 << (i + 1);
                writeln!(f, "    [{lo:>6}, {hi:>6})  {count:>6}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { cycle, event }
    }

    #[test]
    fn latency_buckets_are_powers_of_two() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(1023), 9);
        assert_eq!(bucket(1024), 10);
    }

    #[test]
    fn sites_accumulate_and_rank() {
        let events = vec![
            rec(
                10,
                TraceEvent::Divergence {
                    pc: 7,
                    mask: 0b11,
                    parts: 2,
                },
            ),
            rec(40, TraceEvent::Remerge { mask: 0b11 }),
            rec(
                50,
                TraceEvent::Divergence {
                    pc: 9,
                    mask: 0b11,
                    parts: 2,
                },
            ),
            rec(300, TraceEvent::Remerge { mask: 0b11 }),
        ];
        let s = summarize(&events, 400, 0);
        assert_eq!(s.remerges, 2);
        assert_eq!(s.unresolved, 0);
        assert_eq!(s.sites.len(), 2);
        // pc 9 held its threads 250 cycles each; pc 7 only 30 each.
        assert_eq!(s.sites[0].pc, 9);
        assert_eq!(s.sites[0].cycles_diverged, 500);
        assert_eq!(s.sites[1].cycles_diverged, 60);
        // Four rejoining threads: two at latency 30, two at 250.
        assert_eq!(s.remerge_latency.iter().sum::<u64>(), 4);
        assert_eq!(s.remerge_latency[bucket(30)], 2);
        assert_eq!(s.remerge_latency[bucket(250)], 2);
    }

    #[test]
    fn rediverge_and_unresolved_intervals() {
        let events = vec![
            rec(
                10,
                TraceEvent::Divergence {
                    pc: 7,
                    mask: 0b11,
                    parts: 2,
                },
            ),
            // Thread 1 diverges again (nested split) before any remerge.
            rec(
                30,
                TraceEvent::Divergence {
                    pc: 8,
                    mask: 0b10,
                    parts: 2,
                },
            ),
            rec(50, TraceEvent::Remerge { mask: 0b01 }),
        ];
        let s = summarize(&events, 100, 3);
        assert_eq!(s.dropped, 3);
        // Thread 0: site 7 from 10..50 (remerged, 40 cycles).
        // Thread 1: site 7 from 10..30 (20), then site 8 from 30..100
        // unresolved (70).
        assert_eq!(s.unresolved, 1);
        let site7 = s.sites.iter().find(|x| x.pc == 7).unwrap();
        let site8 = s.sites.iter().find(|x| x.pc == 8).unwrap();
        assert_eq!(site7.cycles_diverged, 60);
        assert_eq!(site8.cycles_diverged, 70);
        assert_eq!(s.remerge_latency.iter().sum::<u64>(), 1);
        let text = s.to_string();
        assert!(text.contains("top divergence sites"));
        assert!(text.contains("3 dropped"));
    }
}
