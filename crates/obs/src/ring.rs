//! Fixed-capacity, allocation-free event ring.
//!
//! The buffer is allocated once at construction; pushes never reallocate.
//! When full, the oldest record is overwritten and counted in
//! [`EventRing::dropped`], so a bounded ring can trace an unbounded run
//! and still report exactly how much history it lost.

use crate::event::TraceRecord;

/// Ring buffer of [`TraceRecord`]s with drop accounting.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// Allocate a ring holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> EventRing {
        assert!(capacity > 0, "event ring needs a non-zero capacity");
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append a record, overwriting the oldest once full. Never
    /// allocates after construction.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Iterate oldest → newest.
    pub fn ordered(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Consume the ring, returning `(records oldest → newest, dropped)`.
    pub fn into_ordered(mut self) -> (Vec<TraceRecord>, u64) {
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(cycle: u64) -> TraceRecord {
        TraceRecord {
            cycle,
            event: TraceEvent::Remerge { mask: 0b11 },
        }
    }

    #[test]
    fn fills_without_wrapping() {
        let mut r = EventRing::with_capacity(4);
        assert!(r.is_empty());
        for c in 0..3 {
            r.push(rec(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.ordered().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn wraps_and_counts_drops() {
        let mut r = EventRing::with_capacity(4);
        for c in 0..10 {
            r.push(rec(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.ordered().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest records evicted first");
        let (v, dropped) = r.into_ordered();
        assert_eq!(dropped, 6);
        assert_eq!(v.iter().map(|e| e.cycle).collect::<Vec<_>>(), [6, 7, 8, 9]);
    }

    #[test]
    fn push_never_reallocates() {
        let mut r = EventRing::with_capacity(8);
        let base = r.buf.capacity();
        for c in 0..100 {
            r.push(rec(c));
        }
        assert_eq!(r.buf.capacity(), base, "ring must not grow");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = EventRing::with_capacity(0);
    }
}
