//! Windowed metrics: per-N-cycle time series derived from the running
//! [`CounterSet`] plus instantaneous
//! structure occupancies sampled at each window boundary.

use crate::replay::CounterSet;
use mmt_isa::MAX_THREADS;

/// Instantaneous pipeline-structure occupancies, supplied by the
/// simulator at each window boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Live uops in the reorder buffer.
    pub rob: u32,
    /// Live memory uops in the load/store queue.
    pub lsq: u32,
    /// Uops waiting in the issue queue.
    pub iq: u32,
    /// Total uop-arena slots allocated (live + free-listed).
    pub arena: u32,
}

/// One window of the time series. Counter fields are deltas over the
/// window; occupancy fields are instantaneous samples at `end_cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Last cycle covered by this window (windows end at multiples of
    /// the configured width, plus one final partial window at run end).
    pub end_cycle: u64,
    /// Cycles actually covered (equal to the width except for the final
    /// partial window).
    pub cycles: u64,
    /// Instructions retired per thread during the window.
    pub retired: [u64; MAX_THREADS],
    /// Thread-instruction slots fetched merged during the window.
    pub fetch_merge: u64,
    /// Slots fetched in DETECT during the window.
    pub fetch_detect: u64,
    /// Slots fetched in CATCHUP during the window.
    pub fetch_catchup: u64,
    /// Uops dispatched during the window.
    pub uops_dispatched: u64,
    /// Dispatched uops covering two or more threads.
    pub merged_uops: u64,
    /// Remerges completed during the window.
    pub remerges: u64,
    /// Divergences during the window.
    pub divergences: u64,
    /// Occupancies at the window boundary.
    pub occupancy: Occupancy,
}

impl WindowSample {
    /// Committed thread-instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired.iter().sum::<u64>() as f64 / self.cycles as f64
    }

    /// Per-thread IPC over the window.
    pub fn thread_ipc(&self, t: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired[t] as f64 / self.cycles as f64
    }

    /// Fraction of fetched slots that were merged (0 when nothing was
    /// fetched).
    pub fn merge_fraction(&self) -> f64 {
        let total = self.fetch_merge + self.fetch_detect + self.fetch_catchup;
        if total == 0 {
            0.0
        } else {
            self.fetch_merge as f64 / total as f64
        }
    }

    /// Fraction of dispatched uops that were merged (0 when nothing
    /// dispatched).
    pub fn merged_dispatch_fraction(&self) -> f64 {
        if self.uops_dispatched == 0 {
            0.0
        } else {
            self.merged_uops as f64 / self.uops_dispatched as f64
        }
    }
}

/// Accumulates [`WindowSample`]s by diffing the recorder's running
/// counters at each boundary.
#[derive(Debug, Clone)]
pub struct WindowedRecorder {
    window: u64,
    last: CounterSet,
    last_cycle: u64,
    samples: Vec<WindowSample>,
}

impl WindowedRecorder {
    /// Create a recorder sampling every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> WindowedRecorder {
        assert!(window > 0, "window width must be non-zero");
        WindowedRecorder {
            window,
            last: CounterSet::default(),
            last_cycle: 0,
            samples: Vec::new(),
        }
    }

    /// Configured window width in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Whether `now` is a window boundary (the simulator gates its
    /// sampling call on this to keep the common cycle cheap).
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        now > 0 && now.is_multiple_of(self.window)
    }

    /// Close the window ending at `now` against the running `counters`.
    pub fn sample(&mut self, now: u64, counters: &CounterSet, occupancy: Occupancy) {
        if now <= self.last_cycle {
            return; // empty window (e.g. final flush right on a boundary)
        }
        let d = |a: u64, b: u64| a - b;
        let mut retired = [0u64; MAX_THREADS];
        for (t, r) in retired.iter_mut().enumerate() {
            *r = counters.retired[t] - self.last.retired[t];
        }
        self.samples.push(WindowSample {
            end_cycle: now,
            cycles: now - self.last_cycle,
            retired,
            fetch_merge: d(counters.fetch_merge, self.last.fetch_merge),
            fetch_detect: d(counters.fetch_detect, self.last.fetch_detect),
            fetch_catchup: d(counters.fetch_catchup, self.last.fetch_catchup),
            uops_dispatched: d(counters.uops_dispatched, self.last.uops_dispatched),
            merged_uops: d(counters.merged_uops, self.last.merged_uops),
            remerges: d(counters.remerges, self.last.remerges),
            divergences: d(counters.divergences, self.last.divergences),
            occupancy,
        });
        self.last = *counters;
        self.last_cycle = now;
    }

    /// Samples collected so far.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Consume the recorder, returning the series.
    pub fn into_samples(self) -> Vec<WindowSample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_deltas() {
        let mut w = WindowedRecorder::new(100);
        assert!(!w.due(0));
        assert!(w.due(100));
        assert!(!w.due(150));

        let mut c = CounterSet::default();
        c.retired[0] = 50;
        c.fetch_merge = 80;
        c.uops_dispatched = 60;
        c.merged_uops = 30;
        w.sample(
            100,
            &c,
            Occupancy {
                rob: 10,
                lsq: 2,
                iq: 5,
                arena: 64,
            },
        );

        c.retired[0] = 120;
        c.fetch_merge = 100;
        c.fetch_detect = 40;
        c.uops_dispatched = 130;
        c.merged_uops = 40;
        c.remerges = 1;
        w.sample(200, &c, Occupancy::default());

        let s = w.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].retired[0], 50);
        assert_eq!(s[0].occupancy.rob, 10);
        assert!((s[0].ipc() - 0.5).abs() < 1e-12);
        assert!((s[0].merge_fraction() - 1.0).abs() < 1e-12);
        assert!((s[0].merged_dispatch_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s[1].retired[0], 70);
        assert_eq!(s[1].fetch_detect, 40);
        assert_eq!(s[1].remerges, 1);
        assert!((s[1].thread_ipc(0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn final_partial_window_and_empty_flush() {
        let mut w = WindowedRecorder::new(100);
        let mut c = CounterSet::default();
        c.retired[0] = 10;
        w.sample(100, &c, Occupancy::default());
        // Flush at the same cycle: no empty window recorded.
        w.sample(100, &c, Occupancy::default());
        c.retired[0] = 14;
        w.sample(130, &c, Occupancy::default());
        let s = w.into_samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].cycles, 30);
        assert_eq!(s[1].retired[0], 4);
    }

    #[test]
    fn zero_cycle_sample_is_safe() {
        let s = WindowSample {
            end_cycle: 0,
            cycles: 0,
            retired: [0; MAX_THREADS],
            fetch_merge: 0,
            fetch_detect: 0,
            fetch_catchup: 0,
            uops_dispatched: 0,
            merged_uops: 0,
            remerges: 0,
            divergences: 0,
            occupancy: Occupancy::default(),
        };
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.merge_fraction(), 0.0);
        assert_eq!(s.merged_dispatch_fraction(), 0.0);
    }
}
