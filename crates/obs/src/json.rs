//! A minimal JSON reader *and* writer.
//!
//! The workspace vendors a serializer-only `serde_json` stub (offline
//! containers, no registry), so trace validation and baseline reading
//! need their own reader. This parses the full JSON grammar into a
//! [`Value`] tree; it favors clear errors over speed and is used only on
//! tool/test paths, never in the cycle loop.
//!
//! The write side ([`push_escaped`], [`ObjectWriter`],
//! [`Value::to_json`]) is the one escaping-correct serializer every
//! hand-rolled JSON line in the workspace routes through. Bins used to
//! format strings with `{:?}` — Rust's `Debug` escapes non-ASCII as
//! `\u{e9}`, which is *invalid* JSON — so string emission lives here
//! once, with regression tests, instead of per-binary.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; trace fields fit exactly).
    Number(f64),
    /// String (escapes decoded).
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (order-insensitive).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting depth accepted by [`parse`]. Deeper
/// documents get a typed [`ParseError`] instead of a recursion-stack
/// overflow — a hostile or corrupted input (e.g. a megabyte of `[`) must
/// degrade to an error, never abort the process.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns the first syntax error with its byte offset. Documents nested
/// deeper than [`MAX_DEPTH`] containers are rejected.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Error from [`parse_file`]: either the read or the parse failed.
#[derive(Debug)]
pub enum FileParseError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The contents were not valid JSON.
    Parse(ParseError),
}

impl fmt::Display for FileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileParseError::Io(e) => write!(f, "read failed: {e}"),
            FileParseError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FileParseError {}

/// Read `path` and parse it as one JSON document — the shared helper for
/// every tool that re-reads a committed report or trace (one reader, no
/// per-binary copies to drift).
///
/// # Errors
///
/// [`FileParseError::Io`] if the file cannot be read,
/// [`FileParseError::Parse`] on the first syntax error.
pub fn parse_file(path: impl AsRef<Path>) -> Result<Value, FileParseError> {
    let text = std::fs::read_to_string(path).map_err(FileParseError::Io)?;
    parse(&text).map_err(FileParseError::Parse)
}

/// Append `s` to `out` as a JSON string literal, surrounding quotes
/// included. Escapes `"` and `\`, the short-form control characters
/// (`\n`, `\r`, `\t`, `\u{8}`, `\u{c}`), and the remaining C0 control
/// characters as `\u00XX`; non-ASCII scalars pass through verbatim
/// (JSON documents are UTF-8).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON string literal for `s` (see [`push_escaped`]).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_escaped(&mut out, s);
    out
}

/// Append a finite `f64` in round-trippable form; JSON has no NaN or
/// infinity, so those serialize as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for one JSON object: handles comma placement and
/// string escaping so call sites only name keys and values. The shared
/// primitive behind every hand-rolled JSON line in the bench bins.
#[derive(Debug)]
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Open an object (`{`) on `out`.
    pub fn new(out: &'a mut String) -> ObjectWriter<'a> {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_escaped(self.out, key);
        self.out.push(':');
        self.out
    }

    /// Write a string field (escaped).
    pub fn str(&mut self, key: &str, val: &str) -> &mut Self {
        let out = self.key(key);
        push_escaped(out, val);
        self
    }

    /// Write an unsigned integer field.
    pub fn u64(&mut self, key: &str, val: u64) -> &mut Self {
        let out = self.key(key);
        let _ = std::fmt::Write::write_fmt(out, format_args!("{val}"));
        self
    }

    /// Write a float field (`null` for non-finite values).
    pub fn f64(&mut self, key: &str, val: f64) -> &mut Self {
        let out = self.key(key);
        push_f64(out, val);
        self
    }

    /// Write a boolean field.
    pub fn bool(&mut self, key: &str, val: bool) -> &mut Self {
        let out = self.key(key);
        out.push_str(if val { "true" } else { "false" });
        self
    }

    /// Write a field whose value is already-serialized JSON.
    pub fn raw(&mut self, key: &str, val: &str) -> &mut Self {
        self.key(key).push_str(val);
        self
    }

    /// Close the object (`}`).
    pub fn finish(self) {
        self.out.push('}');
    }
}

impl Value {
    /// Serialize back to compact JSON text. Round-trips with [`parse`]
    /// up to number formatting (numbers are stored as `f64`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Append this value to `out` as compact JSON.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => push_f64(out, *n),
            Value::String(s) => push_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                let mut w = ObjectWriter::new(out);
                for (k, v) in map {
                    let mut val = String::new();
                    v.write_json(&mut val);
                    w.raw(k, &val);
                }
                w.finish();
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("containers nested deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slicing on scalar boundaries"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse(r#""café → ümlaut""#).unwrap();
        assert_eq!(v.as_str(), Some("café → ümlaut"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,)",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "[1,]nope",
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_file_round_trips_and_reports_both_error_kinds() {
        let dir = std::env::temp_dir().join("mmt-json-parse-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, r#"{"sim_cycles_per_sec": 42.5}"#).unwrap();
        let v = parse_file(&good).unwrap();
        assert_eq!(v.get("sim_cycles_per_sec").unwrap().as_f64(), Some(42.5));

        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{nope").unwrap();
        assert!(matches!(parse_file(&bad), Err(FileParseError::Parse(_))));
        assert!(matches!(
            parse_file(dir.join("missing.json")),
            Err(FileParseError::Io(_))
        ));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse(" {} ").unwrap(), Value::Object(BTreeMap::new()));
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        // The regression set: control characters, quotes, backslashes,
        // and non-ASCII — exactly the inputs Rust's `Debug` formatting
        // (the old bin-side "serializer") gets wrong.
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab and\rreturn",
            "control \u{1} \u{8} \u{c} \u{1f} chars",
            "café → ümlaut 日本語 🦀",
            "",
        ] {
            let lit = escaped(s);
            let v = parse(&lit).unwrap_or_else(|e| panic!("{lit} does not parse: {e}"));
            assert_eq!(v.as_str(), Some(s), "round-trip of {s:?}");
        }
    }

    #[test]
    fn debug_formatting_is_not_json() {
        // Documents why the writer exists: `{:?}` escapes non-ASCII as
        // `\u{e9}`, which the grammar rejects.
        let debug = format!("{:?}", "caf\u{e9}\u{1}");
        assert!(parse(&debug).is_err(), "Debug output parsed as JSON");
        assert!(parse(&escaped("caf\u{e9}\u{1}")).is_ok());
    }

    #[test]
    fn object_writer_builds_valid_documents() {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out);
        w.str("app", "caf\u{e9}\n")
            .u64("threads", 4)
            .f64("ipc", 1.25)
            .f64("nan", f64::NAN)
            .bool("ok", true)
            .raw("list", "[1,2]");
        w.finish();
        let v = parse(&out).expect("writer output parses");
        assert_eq!(v.get("app").unwrap().as_str(), Some("caf\u{e9}\n"));
        assert_eq!(v.get("threads").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("ipc").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("nan"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("list").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn value_to_json_round_trips() {
        let src = r#"{"a":[1,2.5,-300],"b":{"c":"x\ny é","d":null,"e":true}}"#;
        let v = parse(src).unwrap();
        let re = parse(&v.to_json()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn nesting_is_bounded() {
        // At the limit: fine. One past it: a typed error, not a stack
        // overflow abort.
        let at = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at).is_ok());
        let over = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = parse(&over).unwrap_err();
        assert!(err.message.contains("nested deeper"), "{err}");
        // Unclosed flood (the realistic corruption shape) also errors.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"a\":".repeat(100_000)).is_err());
    }
}
