//! Chrome trace-event exporter (the `chrome://tracing` / Perfetto JSON
//! format) and a structural validator for it.
//!
//! Layout: one process (`pid` 1), one track per hardware thread carrying
//! that thread's fetch-sync mode as balanced `B`/`E` span pairs
//! (synthesized from [`ModeTransition`](crate::TraceEvent::ModeTransition)
//! events plus the initial mode, closed at trace end), instant events for
//! divergences / remerges / LVIP rollbacks, and `C` counter tracks fed by
//! the window samples (per-thread IPC, fetch-merge fraction, structure
//! occupancies, merged-dispatch fraction). Cycle numbers are written as
//! microsecond timestamps so one Perfetto "µs" equals one simulated cycle.

use crate::event::{LvipOutcome, ModeTag, TraceEvent};
use crate::json::{self, Value};
use crate::Trace;
use std::fmt::Write as _;

const PID: u32 = 1;

/// One pending trace-event row; serialized after a stable sort by `ts`.
struct Row {
    ts: u64,
    ph: char,
    tid: u32,
    name: &'static str,
    /// Pre-rendered `"args":{...}` payload, or empty for none.
    args: String,
}

fn row(ts: u64, ph: char, tid: u32, name: &'static str, args: String) -> Row {
    Row {
        ts,
        ph,
        tid,
        name,
        args,
    }
}

/// Render a [`Trace`] as a Chrome trace-event JSON document.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut rows: Vec<Row> = Vec::new();

    // Per-thread mode spans: open with the initial mode, flip at each
    // transition, close everything at trace end. E-before-B ordering at a
    // shared cycle is preserved by the stable sort below.
    let initial = if trace.initial_merged {
        ModeTag::Merge
    } else {
        ModeTag::Detect
    };
    let mut open: Vec<ModeTag> = vec![initial; trace.threads];
    for (t, mode) in open.iter().enumerate() {
        rows.push(row(0, 'B', t as u32, mode.name(), String::new()));
    }
    for rec in &trace.events {
        match rec.event {
            TraceEvent::ModeTransition {
                thread,
                to,
                trigger,
            } => {
                let t = thread as usize;
                if t < trace.threads {
                    rows.push(row(
                        rec.cycle,
                        'E',
                        thread as u32,
                        open[t].name(),
                        String::new(),
                    ));
                    rows.push(row(
                        rec.cycle,
                        'B',
                        thread as u32,
                        to.name(),
                        format!(",\"args\":{{\"trigger\":\"{}\"}}", trigger.name()),
                    ));
                    open[t] = to;
                }
            }
            TraceEvent::Divergence { pc, mask, parts } => {
                rows.push(row(
                    rec.cycle,
                    'i',
                    mask.trailing_zeros(),
                    "divergence",
                    format!(
                        ",\"s\":\"p\",\"args\":{{\"pc\":{pc},\"mask\":{mask},\"parts\":{parts}}}"
                    ),
                ));
            }
            TraceEvent::Remerge { mask } => {
                rows.push(row(
                    rec.cycle,
                    'i',
                    mask.trailing_zeros(),
                    "remerge",
                    format!(",\"s\":\"p\",\"args\":{{\"mask\":{mask}}}"),
                ));
            }
            TraceEvent::Lvip {
                pc,
                mask,
                outcome: LvipOutcome::Rollback,
            } => {
                rows.push(row(
                    rec.cycle,
                    'i',
                    mask.trailing_zeros(),
                    "lvip-rollback",
                    format!(",\"s\":\"t\",\"args\":{{\"pc\":{pc},\"mask\":{mask}}}"),
                ));
            }
            TraceEvent::FaultInjected { unit, index } => {
                rows.push(row(
                    rec.cycle,
                    'i',
                    0,
                    "fault",
                    format!(
                        ",\"s\":\"g\",\"args\":{{\"unit\":\"{}\",\"idx\":{index}}}",
                        unit.name()
                    ),
                ));
            }
            TraceEvent::Watchdog { kind } => {
                rows.push(row(
                    rec.cycle,
                    'i',
                    0,
                    "watchdog",
                    format!(",\"s\":\"g\",\"args\":{{\"kind\":\"{}\"}}", kind.name()),
                ));
            }
            _ => {}
        }
    }
    for (t, mode) in open.iter().enumerate() {
        rows.push(row(trace.cycles, 'E', t as u32, mode.name(), String::new()));
    }

    // Counter tracks from the window series.
    for s in &trace.windows {
        let mut ipc = String::from(",\"args\":{");
        for t in 0..trace.threads {
            if t > 0 {
                ipc.push(',');
            }
            let _ = write!(ipc, "\"t{t}\":{:.4}", s.thread_ipc(t));
        }
        ipc.push('}');
        rows.push(row(s.end_cycle, 'C', 0, "ipc", ipc));
        rows.push(row(
            s.end_cycle,
            'C',
            0,
            "fetch merge fraction",
            format!(",\"args\":{{\"merged\":{:.4}}}", s.merge_fraction()),
        ));
        rows.push(row(
            s.end_cycle,
            'C',
            0,
            "merged dispatch fraction",
            format!(
                ",\"args\":{{\"merged\":{:.4}}}",
                s.merged_dispatch_fraction()
            ),
        ));
        rows.push(row(
            s.end_cycle,
            'C',
            0,
            "occupancy",
            format!(
                ",\"args\":{{\"rob\":{},\"lsq\":{},\"iq\":{},\"arena\":{}}}",
                s.occupancy.rob, s.occupancy.lsq, s.occupancy.iq, s.occupancy.arena
            ),
        ));
        rows.push(row(
            s.end_cycle,
            'C',
            0,
            "remerges",
            format!(",\"args\":{{\"count\":{}}}", s.remerges),
        ));
    }

    // Stable sort: non-decreasing ts, insertion order preserved within a
    // cycle (keeps E-before-B pairs adjacent and validator-clean).
    rows.sort_by_key(|r| r.ts);

    let mut out = String::with_capacity(rows.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"mmt pipeline\"}}}}"
    );
    for t in 0..trace.threads {
        let _ = write!(
            out,
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{t},\
             \"args\":{{\"name\":\"thread {t} fetch mode\"}}}}"
        );
    }
    for r in &rows {
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"cat\":\"mmt\",\"ph\":\"{}\",\"ts\":{},\"pid\":{PID},\
             \"tid\":{}{}}}",
            r.name, r.ph, r.ts, r.tid, r.args
        );
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"cycles\":{},\"threads\":{},\"window\":{},\"dropped\":{}}}}}",
        trace.cycles, trace.threads, trace.window, trace.dropped
    );
    out
}

/// Structural facts about a validated Chrome trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub span_pairs: usize,
    /// `C` counter samples.
    pub counters: usize,
    /// Instant (`i`) events.
    pub instants: usize,
}

/// Validate a Chrome trace-event document: well-formed JSON, a
/// `traceEvents` array, monotonically non-decreasing timestamps, and
/// balanced `B`/`E` pairs (matching names) on every `(pid, tid)` track.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;

    let mut summary = ChromeSummary {
        events: events.len(),
        ..Default::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    // (pid, tid) -> stack of open span names.
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < last_ts {
            return Err(format!(
                "event {i}: ts {ts} < previous {last_ts} (not sorted)"
            ));
        }
        last_ts = ts;
        let pid = ev.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        match ph {
            "B" => stacks.entry((pid, tid)).or_default().push(name.to_string()),
            "E" => {
                let stack = stacks.entry((pid, tid)).or_default();
                match stack.pop() {
                    Some(open) if open == name => summary.span_pairs += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E '{name}' closes B '{open}' on track ({pid},{tid})"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E '{name}' with no open B on track ({pid},{tid})"
                        ));
                    }
                }
            }
            "C" => summary.counters += 1,
            "i" | "I" => summary.instants += 1,
            other => return Err(format!("event {i}: unsupported ph '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed B '{open}' on track ({pid},{tid})"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ModeTrigger, TraceRecord};
    use crate::window::{Occupancy, WindowSample};
    use mmt_isa::MAX_THREADS;

    fn sample_trace() -> Trace {
        let events = vec![
            TraceRecord {
                cycle: 40,
                event: TraceEvent::Divergence {
                    pc: 7,
                    mask: 0b11,
                    parts: 2,
                },
            },
            TraceRecord {
                cycle: 40,
                event: TraceEvent::ModeTransition {
                    thread: 0,
                    to: ModeTag::Detect,
                    trigger: ModeTrigger::Divergence,
                },
            },
            TraceRecord {
                cycle: 40,
                event: TraceEvent::ModeTransition {
                    thread: 1,
                    to: ModeTag::Detect,
                    trigger: ModeTrigger::Divergence,
                },
            },
            TraceRecord {
                cycle: 90,
                event: TraceEvent::ModeTransition {
                    thread: 1,
                    to: ModeTag::Merge,
                    trigger: ModeTrigger::PcMatch,
                },
            },
            TraceRecord {
                cycle: 90,
                event: TraceEvent::ModeTransition {
                    thread: 0,
                    to: ModeTag::Merge,
                    trigger: ModeTrigger::PcMatch,
                },
            },
            TraceRecord {
                cycle: 90,
                event: TraceEvent::Remerge { mask: 0b11 },
            },
        ];
        let windows = vec![WindowSample {
            end_cycle: 100,
            cycles: 100,
            retired: [0; MAX_THREADS],
            fetch_merge: 50,
            fetch_detect: 50,
            fetch_catchup: 0,
            uops_dispatched: 60,
            merged_uops: 20,
            remerges: 1,
            divergences: 1,
            occupancy: Occupancy {
                rob: 8,
                lsq: 2,
                iq: 4,
                arena: 32,
            },
        }];
        Trace {
            threads: 2,
            window: 100,
            cycles: 120,
            dropped: 0,
            initial_merged: true,
            events,
            windows,
        }
    }

    #[test]
    fn export_validates_round_trip() {
        let text = chrome_trace_json(&sample_trace());
        let summary = validate_chrome_trace(&text).expect("trace validates");
        // 2 initial spans + 4 transition spans, all closed.
        assert_eq!(summary.span_pairs, 6);
        assert_eq!(summary.counters, 5);
        assert_eq!(summary.instants, 2);
    }

    #[test]
    fn validator_rejects_broken_streams() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let unbalanced = r#"{"traceEvents":[
            {"ph":"B","ts":0,"pid":1,"tid":0,"name":"MERGE"}]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unclosed"));
        let misordered = r#"{"traceEvents":[
            {"ph":"i","ts":5,"pid":1,"tid":0,"name":"x"},
            {"ph":"i","ts":4,"pid":1,"tid":0,"name":"y"}]}"#;
        assert!(validate_chrome_trace(misordered)
            .unwrap_err()
            .contains("not sorted"));
        let crossed = r#"{"traceEvents":[
            {"ph":"B","ts":0,"pid":1,"tid":0,"name":"MERGE"},
            {"ph":"E","ts":1,"pid":1,"tid":0,"name":"DETECT"}]}"#;
        assert!(validate_chrome_trace(crossed)
            .unwrap_err()
            .contains("closes"));
    }
}
