//! Compact JSONL exporters: one JSON object per line, for events and
//! window samples. Field names are short (`c` cycle, `k` kind, `m`
//! mask) because divergent runs emit millions of lines; every line is a
//! complete, self-describing record so streams can be grepped or tailed.

use crate::event::{TraceEvent, TraceRecord};
use crate::window::WindowSample;
use std::fmt::Write as _;

/// Append one event as a JSONL line (including the trailing newline).
pub fn append_event_line(out: &mut String, rec: &TraceRecord) {
    let _ = write!(out, "{{\"c\":{},\"k\":\"{}\"", rec.cycle, rec.event.name());
    match rec.event {
        TraceEvent::Fetch { pc, mask, kind } => {
            let _ = write!(
                out,
                ",\"pc\":{pc},\"m\":{mask},\"mode\":\"{}\"",
                kind.name()
            );
        }
        TraceEvent::Split {
            pc,
            mask,
            kind,
            cause,
        } => {
            let _ = write!(
                out,
                ",\"pc\":{pc},\"m\":{mask},\"shape\":\"{}\",\"cause\":\"{}\"",
                kind.name(),
                cause.name()
            );
        }
        TraceEvent::Dispatch { pc, mask, merged } => {
            let _ = write!(out, ",\"pc\":{pc},\"m\":{mask},\"merged\":{merged}");
        }
        TraceEvent::Issue {
            pc,
            mask,
            complete_at,
        } => {
            let _ = write!(out, ",\"pc\":{pc},\"m\":{mask},\"done\":{complete_at}");
        }
        TraceEvent::Commit { pc, mask } => {
            let _ = write!(out, ",\"pc\":{pc},\"m\":{mask}");
        }
        TraceEvent::ModeTransition {
            thread,
            to,
            trigger,
        } => {
            let _ = write!(
                out,
                ",\"t\":{thread},\"to\":\"{}\",\"trigger\":\"{}\"",
                to.name(),
                trigger.name()
            );
        }
        TraceEvent::Divergence { pc, mask, parts } => {
            let _ = write!(out, ",\"pc\":{pc},\"m\":{mask},\"parts\":{parts}");
        }
        TraceEvent::Remerge { mask } => {
            let _ = write!(out, ",\"m\":{mask}");
        }
        TraceEvent::RstSet { reg, a, b } => {
            let _ = write!(out, ",\"reg\":{reg},\"a\":{a},\"b\":{b}");
        }
        TraceEvent::RstClear { reg, mask } => {
            let _ = write!(out, ",\"reg\":{reg},\"m\":{mask}");
        }
        TraceEvent::Lvip { pc, mask, outcome } => {
            let _ = write!(
                out,
                ",\"pc\":{pc},\"m\":{mask},\"outcome\":\"{}\"",
                outcome.name()
            );
        }
        TraceEvent::FaultInjected { unit, index } => {
            let _ = write!(out, ",\"unit\":\"{}\",\"idx\":{index}", unit.name());
        }
        TraceEvent::Watchdog { kind } => {
            let _ = write!(out, ",\"kind\":\"{}\"", kind.name());
        }
    }
    out.push_str("}\n");
}

/// Render a full event stream as JSONL.
pub fn events_jsonl(events: &[TraceRecord]) -> String {
    // ~64 bytes/line is a comfortable overestimate for the short keys.
    let mut out = String::with_capacity(events.len() * 64);
    for rec in events {
        append_event_line(&mut out, rec);
    }
    out
}

/// Append one window sample as a JSONL line (trailing newline included).
pub fn append_window_line(out: &mut String, s: &WindowSample, threads: usize) {
    let _ = write!(
        out,
        "{{\"end\":{},\"cycles\":{},\"retired\":[",
        s.end_cycle, s.cycles
    );
    for (t, r) in s.retired.iter().take(threads).enumerate() {
        if t > 0 {
            out.push(',');
        }
        let _ = write!(out, "{r}");
    }
    let _ = writeln!(
        out,
        "],\"ipc\":{:.4},\"merge_frac\":{:.4},\"merged_dispatch_frac\":{:.4},\
         \"fetch\":{{\"merge\":{},\"detect\":{},\"catchup\":{}}},\
         \"uops\":{},\"merged_uops\":{},\"remerges\":{},\"divergences\":{},\
         \"occ\":{{\"rob\":{},\"lsq\":{},\"iq\":{},\"arena\":{}}}}}",
        s.ipc(),
        s.merge_fraction(),
        s.merged_dispatch_fraction(),
        s.fetch_merge,
        s.fetch_detect,
        s.fetch_catchup,
        s.uops_dispatched,
        s.merged_uops,
        s.remerges,
        s.divergences,
        s.occupancy.rob,
        s.occupancy.lsq,
        s.occupancy.iq,
        s.occupancy.arena,
    );
}

/// Render a window-sample series as JSONL.
pub fn windows_jsonl(samples: &[WindowSample], threads: usize) -> String {
    let mut out = String::with_capacity(samples.len() * 192);
    for s in samples {
        append_window_line(&mut out, s, threads);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{
        FaultUnit, FetchKind, LvipOutcome, ModeTag, ModeTrigger, SplitCause, SplitKind,
        WatchdogKind,
    };
    use crate::json;
    use crate::window::Occupancy;
    use mmt_isa::MAX_THREADS;

    #[test]
    fn every_event_variant_emits_valid_json() {
        let events = vec![
            TraceEvent::Fetch {
                pc: 3,
                mask: 3,
                kind: FetchKind::Merged,
            },
            TraceEvent::Split {
                pc: 3,
                mask: 3,
                kind: SplitKind::Partial,
                cause: SplitCause::RstSplit,
            },
            TraceEvent::Dispatch {
                pc: 3,
                mask: 1,
                merged: false,
            },
            TraceEvent::Issue {
                pc: 3,
                mask: 1,
                complete_at: 9,
            },
            TraceEvent::Commit { pc: 3, mask: 1 },
            TraceEvent::ModeTransition {
                thread: 1,
                to: ModeTag::Detect,
                trigger: ModeTrigger::Divergence,
            },
            TraceEvent::Divergence {
                pc: 5,
                mask: 3,
                parts: 2,
            },
            TraceEvent::Remerge { mask: 3 },
            TraceEvent::RstSet { reg: 4, a: 0, b: 1 },
            TraceEvent::RstClear { reg: 4, mask: 3 },
            TraceEvent::Lvip {
                pc: 8,
                mask: 3,
                outcome: LvipOutcome::Rollback,
            },
            TraceEvent::FaultInjected {
                unit: FaultUnit::Rst,
                index: 7,
            },
            TraceEvent::Watchdog {
                kind: WatchdogKind::Livelock,
            },
        ];
        let recs: Vec<TraceRecord> = events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                cycle: i as u64,
                event,
            })
            .collect();
        let text = events_jsonl(&recs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), recs.len());
        for (line, rec) in lines.iter().zip(&recs) {
            let v = json::parse(line).expect("line parses");
            assert_eq!(v.get("c").unwrap().as_f64(), Some(rec.cycle as f64));
            assert_eq!(v.get("k").unwrap().as_str(), Some(rec.event.name()));
        }
    }

    #[test]
    fn window_lines_parse_and_truncate_threads() {
        let s = WindowSample {
            end_cycle: 100,
            cycles: 100,
            retired: {
                let mut r = [0u64; MAX_THREADS];
                r[0] = 70;
                r[1] = 50;
                r
            },
            fetch_merge: 80,
            fetch_detect: 20,
            fetch_catchup: 0,
            uops_dispatched: 90,
            merged_uops: 40,
            remerges: 1,
            divergences: 1,
            occupancy: Occupancy {
                rob: 12,
                lsq: 3,
                iq: 6,
                arena: 64,
            },
        };
        let text = windows_jsonl(&[s], 2);
        let v = json::parse(text.trim_end()).expect("window line parses");
        assert_eq!(v.get("retired").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("cycles").unwrap().as_f64(), Some(100.0));
        assert!((v.get("ipc").unwrap().as_f64().unwrap() - 1.2).abs() < 1e-9);
        assert_eq!(
            v.get("occ").unwrap().get("rob").unwrap().as_f64(),
            Some(12.0)
        );
    }
}
