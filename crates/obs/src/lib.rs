//! mmt-obs: cycle-level pipeline observability for the MMT simulator.
//!
//! The crate provides a zero-cost-when-disabled tracing layer:
//!
//! * a typed [event taxonomy](event) covering fetch, split, dispatch,
//!   issue, commit, sync-mode transitions, RST updates, LVIP outcomes,
//!   divergence, and remerge;
//! * a fixed-capacity, allocation-free [event ring](ring) with drop
//!   accounting, so steady-state tracing never perturbs the cycle loop;
//! * a [windowed metrics recorder](window) emitting per-N-cycle time
//!   series (per-thread IPC, fetch-mode fractions, occupancies);
//! * a typed, allocation-free [metrics registry](metrics) — counters,
//!   gauges, fixed-bucket histograms — snapshotable mid-run and
//!   exportable as JSON or Prometheus text exposition;
//! * exporters: [Chrome trace-event JSON](chrome) loadable in Perfetto,
//!   compact [JSONL](jsonl), and a text [timeline summary](timeline);
//! * an offline [replay](mod@replay) that folds an event stream back into
//!   aggregate counters for differential checking against `SimStats`.
//!
//! The crate deliberately depends only on `mmt-isa` (for the thread-count
//! bound) so any layer of the stack can emit or consume traces.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod replay;
pub mod ring;
pub mod timeline;
pub mod window;

pub use chrome::{chrome_trace_json, validate_chrome_trace, ChromeSummary};
pub use event::{
    FaultUnit, FetchKind, LvipOutcome, ModeTag, ModeTrigger, SplitCause, SplitKind, TraceEvent,
    TraceRecord, WatchdogKind,
};
pub use metrics::{
    CounterId, GaugeId, HistogramId, MetricKind, MetricSeries, MetricsRegistry, MetricsSnapshot,
    SeriesValue,
};
pub use replay::{replay, CounterSet};
pub use ring::EventRing;
pub use timeline::{summarize, DivergenceSite, TimelineSummary};
pub use window::{Occupancy, WindowSample, WindowedRecorder};

/// Tracing knobs carried by the simulator config. `None` at the config
/// level means tracing is fully disabled (the recorder is never built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Event-ring capacity in records; the ring is allocated once and
    /// overwrites its oldest entries (with drop accounting) when full.
    pub ring_capacity: usize,
    /// Window width in cycles for the metrics time series.
    pub window: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            ring_capacity: 1 << 16,
            window: 1024,
        }
    }
}

/// A completed trace: the (possibly truncated) event stream, the window
/// series, and enough run metadata to interpret both.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Hardware threads the run simulated.
    pub threads: usize,
    /// Window width used for the time series.
    pub window: u64,
    /// Total cycles the run took.
    pub cycles: u64,
    /// Events lost to ring overflow (0 means `events` is complete).
    pub dropped: u64,
    /// Whether the run started with all threads merged (seeds the mode
    /// spans in the Chrome export).
    pub initial_merged: bool,
    /// The event stream, oldest first.
    pub events: Vec<TraceRecord>,
    /// The windowed metrics series.
    pub windows: Vec<WindowSample>,
}

impl Trace {
    /// Fold the event stream back into aggregate counters.
    pub fn replay_counters(&self) -> CounterSet {
        replay(&self.events)
    }

    /// Compute the text timeline summary.
    pub fn timeline(&self) -> TimelineSummary {
        summarize(&self.events, self.cycles, self.dropped)
    }

    /// Render as Chrome trace-event JSON (Perfetto-loadable).
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(self)
    }

    /// Render the event stream as compact JSONL.
    pub fn events_jsonl(&self) -> String {
        jsonl::events_jsonl(&self.events)
    }

    /// Render the window series as compact JSONL.
    pub fn windows_jsonl(&self) -> String {
        jsonl::windows_jsonl(&self.windows, self.threads)
    }
}

/// The live recorder the simulator owns while tracing is enabled: event
/// ring + running counters + window sampler. All per-cycle entry points
/// are `#[inline]` and allocation-free.
#[derive(Debug, Clone)]
pub struct ObsRecorder {
    ring: EventRing,
    windows: WindowedRecorder,
    counters: CounterSet,
    threads: usize,
    initial_merged: bool,
}

impl ObsRecorder {
    /// Build a recorder for a `threads`-thread run; `initial_merged`
    /// seeds the mode-span tracks in the Chrome export.
    pub fn new(cfg: &TraceConfig, threads: usize, initial_merged: bool) -> ObsRecorder {
        ObsRecorder {
            ring: EventRing::with_capacity(cfg.ring_capacity),
            windows: WindowedRecorder::new(cfg.window),
            counters: CounterSet::default(),
            threads,
            initial_merged,
        }
    }

    /// Record one event at `cycle`.
    #[inline]
    pub fn emit(&mut self, cycle: u64, event: TraceEvent) {
        self.counters.apply(&event);
        self.ring.push(TraceRecord { cycle, event });
    }

    /// Whether `now` closes a metrics window (gate for `sample_window`).
    #[inline]
    pub fn window_due(&self, now: u64) -> bool {
        self.windows.due(now)
    }

    /// Close the window ending at `now` with the given occupancies.
    pub fn sample_window(&mut self, now: u64, occupancy: Occupancy) {
        self.windows.sample(now, &self.counters, occupancy);
    }

    /// The running counters (live view, same semantics as replay).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Finish at `cycles`, flushing a final partial window with the
    /// end-of-run occupancies, and return the completed [`Trace`].
    pub fn into_trace(mut self, cycles: u64, occupancy: Occupancy) -> Trace {
        self.windows.sample(cycles, &self.counters, occupancy);
        let window = self.windows.window();
        let (events, dropped) = self.ring.into_ordered();
        Trace {
            threads: self.threads,
            window,
            cycles,
            dropped,
            initial_merged: self.initial_merged,
            events,
            windows: self.windows.into_samples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_end_to_end() {
        let cfg = TraceConfig {
            ring_capacity: 64,
            window: 10,
        };
        let mut obs = ObsRecorder::new(&cfg, 2, true);
        obs.emit(
            0,
            TraceEvent::Fetch {
                pc: 0,
                mask: 0b11,
                kind: FetchKind::Merged,
            },
        );
        obs.emit(
            2,
            TraceEvent::Dispatch {
                pc: 0,
                mask: 0b11,
                merged: true,
            },
        );
        assert!(!obs.window_due(5));
        assert!(obs.window_due(10));
        obs.sample_window(
            10,
            Occupancy {
                rob: 1,
                lsq: 0,
                iq: 0,
                arena: 4,
            },
        );
        obs.emit(12, TraceEvent::Commit { pc: 0, mask: 0b11 });
        let trace = obs.into_trace(15, Occupancy::default());

        assert_eq!(trace.cycles, 15);
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.windows.len(), 2, "boundary window + final partial");
        assert_eq!(trace.windows[1].cycles, 5);
        assert_eq!(trace.windows[1].retired[0], 1);

        let replayed = trace.replay_counters();
        assert_eq!(replayed.fetch_merge, 2);
        assert_eq!(replayed.commits, 1);
        assert_eq!(replayed.retired[1], 1);

        let chrome = trace.chrome_json();
        let summary = validate_chrome_trace(&chrome).expect("valid chrome trace");
        assert_eq!(summary.span_pairs, 2, "one MERGE span per thread");

        assert_eq!(trace.events_jsonl().lines().count(), 3);
        assert_eq!(trace.windows_jsonl().lines().count(), 2);
        assert_eq!(trace.timeline().events, 3);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.ring_capacity, 65536);
        assert_eq!(cfg.window, 1024);
    }
}
